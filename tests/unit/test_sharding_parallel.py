"""Unit tests: entity-range sharding and the parallel backend's plumbing.

The equivalence contract itself is enforced exhaustively by the
conformance matrix (tests/conformance) and the shard-invariance property
suite (tests/property/test_prop_parallel.py); these tests pin the
building blocks — enumeration, planning, options validation, fallback —
on small hand-checked inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocking.base import build_blocks
from repro.core import BlastConfig
from repro.graph import MetaBlocker, WeightingScheme
from repro.graph.blocking_graph import BlockingGraph
from repro.graph.metablocking import reference_metablocking
from repro.graph.parallel import (
    merge_shards,
    parallel_metablocking,
    resolve_workers,
)
from repro.graph.pruning import BlastPruning, PruningScheme
from repro.graph.sharding import (
    ShardableIndex,
    enumerate_shard_pairs,
    pair_counts_by_entity,
    plan_shards,
    shard_edge_arrays,
)
from repro.graph.vectorized import vectorized_metablocking


@pytest.fixture
def dirty_blocks():
    return build_blocks(
        {"a": {0, 1, 2}, "b": {1, 2, 3}, "c": {0, 3}, "d": {2, 3, 4}},
        is_clean_clean=False,
    )


@pytest.fixture
def clean_blocks():
    return build_blocks(
        {"a": ({0, 1}, {3, 4}), "b": ({1, 2}, {4}), "c": ({0}, {3, 5})},
        is_clean_clean=True,
    )


class TestEnumeration:
    def test_full_range_equals_entity_index(self, dirty_blocks, clean_blocks):
        for blocks in (dirty_blocks, clean_blocks):
            index = blocks.entity_index
            slim = ShardableIndex.from_entity_index(index)
            expected = index.enumerate_pairs()
            actual = enumerate_shard_pairs(slim, 0, slim.num_ids)
            for got, want in zip(actual, expected):
                assert np.array_equal(got, want)

    def test_shards_partition_the_pairs(self, dirty_blocks, clean_blocks):
        for blocks in (dirty_blocks, clean_blocks):
            slim = ShardableIndex.from_entity_index(blocks.entity_index)
            full_src, full_dst, _ = enumerate_shard_pairs(slim, 0, slim.num_ids)
            full = sorted(zip(full_src.tolist(), full_dst.tolist()))
            pieces = []
            for lo, hi in plan_shards(slim, num_shards=3):
                src, dst, _ = enumerate_shard_pairs(slim, lo, hi)
                assert np.all((src >= lo) & (src < hi))
                pieces.extend(zip(src.tolist(), dst.tolist()))
            assert sorted(pieces) == full

    def test_empty_range_yields_no_pairs(self, dirty_blocks):
        slim = ShardableIndex.from_entity_index(dirty_blocks.entity_index)
        src, dst, pair_block = enumerate_shard_pairs(slim, 2, 2)
        assert src.size == dst.size == pair_block.size == 0


class TestPairCounts:
    def test_counts_sum_to_aggregate_cardinality(
        self, dirty_blocks, clean_blocks
    ):
        for blocks in (dirty_blocks, clean_blocks):
            index = blocks.entity_index
            counts = pair_counts_by_entity(
                ShardableIndex.from_entity_index(index)
            )
            assert int(counts.sum()) == index.total_comparisons

    def test_clean_clean_right_side_owns_nothing(self, clean_blocks):
        counts = pair_counts_by_entity(
            ShardableIndex.from_entity_index(clean_blocks.entity_index)
        )
        # E2 ids (3, 4, 5) never appear as src.
        assert counts[3] == counts[4] == counts[5] == 0


class TestPlanner:
    def test_single_shard_covers_everything(self, dirty_blocks):
        slim = ShardableIndex.from_entity_index(dirty_blocks.entity_index)
        assert plan_shards(slim) == [(0, slim.num_ids)]

    def test_requested_shard_count_is_an_upper_bound(self, dirty_blocks):
        slim = ShardableIndex.from_entity_index(dirty_blocks.entity_index)
        plan = plan_shards(slim, num_shards=3)
        assert 1 <= len(plan) <= 3
        assert plan[0][0] == 0 and plan[-1][1] == slim.num_ids

    def test_invalid_arguments_rejected(self, dirty_blocks):
        slim = ShardableIndex.from_entity_index(dirty_blocks.entity_index)
        with pytest.raises(ValueError, match="num_shards"):
            plan_shards(slim, num_shards=0)
        with pytest.raises(ValueError, match="max_pairs"):
            plan_shards(slim, max_pairs=0)

    def test_accepts_a_raw_entity_index(self, dirty_blocks):
        # Convenience: EntityIndex (not just ShardableIndex) works too.
        plan = plan_shards(dirty_blocks.entity_index, num_shards=2)
        assert plan[0][0] == 0


class TestShardEdges:
    def test_masses_are_opt_in(self, dirty_blocks):
        slim = ShardableIndex.from_entity_index(dirty_blocks.entity_index)
        bare = shard_edge_arrays(slim, 0, slim.num_ids)
        assert bare.arcs_mass is None and bare.entropy_mass is None
        full = shard_edge_arrays(
            slim,
            0,
            slim.num_ids,
            need_arcs=True,
            block_entropies=np.ones(slim.num_blocks),
        )
        assert full.arcs_mass is not None and full.entropy_mass is not None
        assert full.num_edges == bare.num_edges

    def test_merge_of_no_shards_is_empty(self):
        merged = merge_shards([])
        assert merged.num_edges == 0


class TestResolveWorkers:
    def test_default_is_cpu_count(self):
        import os

        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_workers(5) == 5

    def test_non_positive_rejected_like_the_config(self):
        # Same contract at every layer: positive or None (BlastConfig
        # rejects 0 too, so backend_options can never smuggle it in).
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-1)


class TestParallelBackend:
    def test_invalid_shard_size_rejected(self, dirty_blocks):
        with pytest.raises(ValueError, match="shard_size"):
            parallel_metablocking(
                dirty_blocks, pruning=BlastPruning(), shard_size=0
            )

    def test_empty_collection(self):
        empty = build_blocks({}, is_clean_clean=False)
        assert parallel_metablocking(
            empty, pruning=BlastPruning(), workers=1
        ) == []

    @pytest.mark.parametrize("plan", [
        [],                      # nothing covered
        [(0, 3)],                # stops short of the id space
        [(0, 3), (2, 5)],        # overlap: would duplicate edges
        [(0, 2), (3, 5)],        # gap: would drop edges
        [(3, 2), (2, 5)],        # inverted range
    ])
    def test_corrupting_shard_plans_rejected(self, dirty_blocks, plan):
        # dirty_blocks spans profile ids 0..4, so num_ids is 5 and every
        # parametrized plan above fails to tile [0, 5) contiguously.
        assert dirty_blocks.entity_index.node_block_counts.size == 5
        with pytest.raises(ValueError, match="shard_plan"):
            parallel_metablocking(
                dirty_blocks, pruning=BlastPruning(), workers=1,
                shard_plan=plan,
            )

    def test_custom_pruning_falls_back_to_reference(self, dirty_blocks):
        class TopOne(PruningScheme):
            def prune(self, graph, weights):
                best = max(weights, key=lambda e: (weights[e], e))
                return {best}

        assert parallel_metablocking(
            dirty_blocks, pruning=TopOne(), workers=1
        ) == reference_metablocking(dirty_blocks, pruning=TopOne())

    def test_custom_weighting_falls_back_to_reference(self, dirty_blocks):
        def inverse_degree(graph: BlockingGraph):
            return {
                edge: 1.0 / (graph.degrees[edge[0]] + graph.degrees[edge[1]])
                for edge, _ in graph.edges()
            }

        assert parallel_metablocking(
            dirty_blocks, weighting=inverse_degree, pruning=BlastPruning(),
            workers=1,
        ) == reference_metablocking(
            dirty_blocks, weighting=inverse_degree, pruning=BlastPruning()
        )

    def test_scheme_accepted_by_name(self, dirty_blocks):
        assert parallel_metablocking(
            dirty_blocks, weighting="cbs", pruning=BlastPruning(), workers=1
        ) == vectorized_metablocking(
            dirty_blocks, weighting="cbs", pruning=BlastPruning()
        )

    def test_worker_pool_matches_serial(self, dirty_blocks):
        serial = vectorized_metablocking(
            dirty_blocks, weighting=WeightingScheme.CHI_H,
            pruning=BlastPruning(),
        )
        pooled = parallel_metablocking(
            dirty_blocks, weighting=WeightingScheme.CHI_H,
            pruning=BlastPruning(), workers=2, shard_size=2,
        )
        assert pooled == serial


class TestMetaBlockerIntegration:
    def test_backend_options_flow_through(self, dirty_blocks):
        meta = MetaBlocker(
            backend="parallel",
            backend_options={"workers": 1, "shard_size": 3},
        )
        assert meta.run(dirty_blocks).distinct_pairs() == MetaBlocker(
            backend="vectorized"
        ).run(dirty_blocks).distinct_pairs()

    def test_config_derives_parallel_options(self):
        config = BlastConfig(backend="parallel", workers=2, shard_size=100)
        assert config.backend_options() == {"workers": 2, "shard_size": 100}

    def test_knobs_rejected_for_serial_backends(self):
        # Silently ignoring --workers on a serial backend would let users
        # believe they run parallel; the config refuses instead.
        with pytest.raises(ValueError, match="serial"):
            BlastConfig(backend="vectorized", workers=2)
        with pytest.raises(ValueError, match="serial"):
            BlastConfig(backend="python", shard_size=100)

    def test_knobs_forwarded_to_custom_backends(self):
        # A registered non-built-in backend may accept execution knobs;
        # the config passes them through instead of rejecting them.
        config = BlastConfig(backend="my-cluster", workers=8, shard_size=10)
        assert config.backend_options() == {"workers": 8, "shard_size": 10}

    def test_options_omit_unset_knobs(self):
        assert BlastConfig(backend="parallel").backend_options() == {}
