"""Tests for repro.data.collection.EntityCollection."""

import pytest

from repro.data.collection import EntityCollection
from repro.data.profile import EntityProfile


def _profiles(n: int) -> list[EntityProfile]:
    return [
        EntityProfile.from_dict(f"p{i}", {"name": f"person {i}", "year": "1985"})
        for i in range(n)
    ]


class TestConstruction:
    def test_rejects_duplicate_ids(self):
        p = EntityProfile.from_dict("dup", {"a": "x"})
        with pytest.raises(ValueError, match="duplicate profile_id"):
            EntityCollection([p, p], "bad")

    def test_empty_collection_allowed(self):
        assert len(EntityCollection([], "empty")) == 0


class TestSequenceProtocol:
    def test_len_and_iteration(self):
        c = EntityCollection(_profiles(3), "c")
        assert len(c) == 3
        assert [p.profile_id for p in c] == ["p0", "p1", "p2"]

    def test_getitem_by_position(self):
        c = EntityCollection(_profiles(3), "c")
        assert c[1].profile_id == "p1"

    def test_contains_by_id_and_profile(self):
        c = EntityCollection(_profiles(2), "c")
        assert "p0" in c
        assert c[0] in c
        assert "missing" not in c


class TestLookups:
    def test_index_of(self):
        c = EntityCollection(_profiles(3), "c")
        assert c.index_of("p2") == 2

    def test_get_by_id(self):
        c = EntityCollection(_profiles(2), "c")
        assert c.get("p1").profile_id == "p1"

    def test_get_missing_raises(self):
        c = EntityCollection(_profiles(1), "c")
        with pytest.raises(KeyError):
            c.get("zzz")


class TestAggregates:
    def test_attribute_names(self):
        profiles = [
            EntityProfile.from_dict("a", {"name": "x"}),
            EntityProfile.from_dict("b", {"year": "1"}),
        ]
        assert EntityCollection(profiles, "c").attribute_names == {"name", "year"}

    def test_num_name_value_pairs(self):
        c = EntityCollection(_profiles(4), "c")
        assert c.num_name_value_pairs == 8  # 2 pairs each

    def test_values_of_collects_across_profiles(self):
        c = EntityCollection(_profiles(2), "c")
        assert c.values_of("year") == ["1985", "1985"]

    def test_values_of_unknown_attribute(self):
        c = EntityCollection(_profiles(1), "c")
        assert c.values_of("ghost") == []
