"""Tests for repro.data.io round-trips and error handling."""

import gzip

import pytest

from repro.data import EntityCollection, EntityProfile, GroundTruth
from repro.data.io import (
    iter_collection,
    load_collection,
    load_csv_collection,
    load_ground_truth,
    open_text,
    save_collection,
    save_ground_truth,
)


@pytest.fixture
def collection() -> EntityCollection:
    return EntityCollection(
        [
            EntityProfile("p1", (("name", "John Abram"), ("name", "J. Abram"))),
            EntityProfile("p2", (("city", "New York, NY"),)),
        ],
        "sample",
    )


class TestJsonLines:
    def test_round_trip(self, collection, tmp_path):
        path = tmp_path / "c.jsonl"
        save_collection(collection, path)
        loaded = load_collection(path, name="sample")
        assert len(loaded) == 2
        assert loaded.get("p1").attributes == collection.get("p1").attributes

    def test_unicode_preserved(self, tmp_path):
        c = EntityCollection([EntityProfile("p", (("name", "José Müller"),))], "u")
        path = tmp_path / "u.jsonl"
        save_collection(c, path)
        assert load_collection(path).get("p").values("name") == ["José Müller"]

    def test_blank_lines_skipped(self, collection, tmp_path):
        path = tmp_path / "c.jsonl"
        save_collection(collection, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_collection(path)) == 2

    def test_malformed_record_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "p1"}\n')  # missing attributes
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_collection(path)

    def test_name_defaults_to_stem(self, collection, tmp_path):
        path = tmp_path / "stemname.jsonl"
        save_collection(collection, path)
        assert load_collection(path).name == "stemname"


class TestStreamingIteration:
    def test_iter_collection_yields_profiles_lazily(self, collection, tmp_path):
        path = tmp_path / "c.jsonl"
        save_collection(collection, path)
        iterator = iter_collection(path)
        first = next(iterator)
        assert first.profile_id == "p1"
        assert [p.profile_id for p in iterator] == ["p2"]

    def test_iter_collection_skips_blank_and_reports_bad_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"id": "a", "attributes": [["n", "x"]]}\n'
            "\n"
            "   \n"
            "{not json}\n",
            encoding="utf-8",
        )
        iterator = iter_collection(path)
        assert next(iterator).profile_id == "a"
        with pytest.raises(ValueError, match="mixed.jsonl:4"):
            next(iterator)

    def test_attributes_not_a_list_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "a", "attributes": 3}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            list(iter_collection(path))


class TestGzipTransparency:
    def test_collection_round_trip(self, collection, tmp_path):
        path = tmp_path / "c.jsonl.gz"
        save_collection(collection, path)
        # The file really is gzip-compressed, not plain text.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        loaded = load_collection(path)
        assert loaded.name == "c"  # .jsonl.gz stripped down to the stem
        assert loaded.get("p1").attributes == collection.get("p1").attributes

    def test_unicode_survives_compression(self, tmp_path):
        c = EntityCollection([EntityProfile("p", (("name", "José Müller"),))], "u")
        path = tmp_path / "u.jsonl.gz"
        save_collection(c, path)
        assert load_collection(path).get("p").values("name") == ["José Müller"]

    def test_ground_truth_round_trip(self, tmp_path):
        gt = GroundTruth([("a1", "b1"), ("a2", "b2")])
        path = tmp_path / "gt.csv.gz"
        save_ground_truth(gt, path)
        assert set(load_ground_truth(path)) == set(gt)

    def test_open_text_reads_external_gzip(self, tmp_path):
        path = tmp_path / "x.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("hello\n")
        with open_text(path) as handle:
            assert handle.read() == "hello\n"

    def test_malformed_gz_line_reports_position(self, collection, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write('{"id": "p1"}\n')  # missing attributes
        with pytest.raises(ValueError, match="bad.jsonl.gz:1"):
            load_collection(path)


class TestGroundTruthCsv:
    def test_round_trip_clean_clean(self, tmp_path):
        gt = GroundTruth([("a1", "b1"), ("a2", "b2")])
        path = tmp_path / "gt.csv"
        save_ground_truth(gt, path)
        loaded = load_ground_truth(path, clean_clean=True)
        assert set(loaded) == set(gt)

    def test_round_trip_dirty(self, tmp_path):
        gt = GroundTruth([("z", "a")], clean_clean=False)
        path = tmp_path / "gt.csv"
        save_ground_truth(gt, path)
        loaded = load_ground_truth(path, clean_clean=False)
        assert ("a", "z") in loaded

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_ground_truth(path)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id1,id2\na,b,c\n")
        with pytest.raises(ValueError, match="2 columns"):
            load_ground_truth(path)


class TestCsvCollection:
    def test_loads_attributes_from_columns(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("id,name,year\n1,Ann,1985\n2,Bob,\n")
        c = load_csv_collection(path)
        assert c.get("1").values("name") == ["Ann"]
        # empty cell -> missing attribute
        assert c.get("2").attribute_names == {"name"}

    def test_missing_id_column_rejected(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("name\nAnn\n")
        with pytest.raises(ValueError, match="id"):
            load_csv_collection(path)

    def test_custom_id_column(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("pk,name\nx1,Ann\n")
        assert load_csv_collection(path, id_column="pk").get("x1")
