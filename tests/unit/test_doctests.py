"""Execute the doctests embedded in the library's docstrings.

Docstring examples are part of the public documentation; running them here
keeps them from rotting.  Modules are resolved through importlib because
several module names are shadowed by same-named functions re-exported in
their package ``__init__`` (e.g. ``repro.utils.tokenize``).
"""

import doctest
import importlib

import pytest

MODULE_NAMES = (
    "repro",  # the package-level quickstart example
    "repro.core.stages",
    "repro.utils.tokenize",
    "repro.utils.timer",
    "repro.data.profile",
    "repro.graph.contingency",
    "repro.lsh.scurve",
    "repro.streaming.session",
)


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module_name} has no doctests to run"
