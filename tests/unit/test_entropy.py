"""Tests for Shannon entropy and aggregate-entropy extraction."""

import math

import pytest

from repro.data import EntityCollection, EntityProfile
from repro.schema.entropy import (
    aggregate_entropies,
    attribute_entropies,
    extract_loose_schema_entropies,
    shannon_entropy,
)
from repro.schema.partition import GLUE_CLUSTER_ID, AttributePartitioning


class TestShannonEntropy:
    def test_uniform_two_values_is_one_bit(self):
        assert shannon_entropy([1, 1]) == pytest.approx(1.0)

    def test_single_value_is_zero(self):
        assert shannon_entropy([7]) == 0.0

    def test_uniform_n_values(self):
        assert shannon_entropy([3] * 8) == pytest.approx(3.0)

    def test_skew_lowers_entropy(self):
        assert shannon_entropy([9, 1]) < shannon_entropy([5, 5])

    def test_zero_counts_ignored(self):
        assert shannon_entropy([2, 0, 2]) == pytest.approx(1.0)

    def test_empty_distribution(self):
        assert shannon_entropy([]) == 0.0

    def test_upper_bound_log2_n(self):
        counts = [1, 2, 3, 4, 5]
        assert shannon_entropy(counts) <= math.log2(len(counts))


class TestAttributeEntropies:
    def _collection(self) -> EntityCollection:
        # "year" repeats one token; "name" has four distinct tokens.
        return EntityCollection(
            [
                EntityProfile.from_dict("1", {"name": "john abram", "year": "1985"}),
                EntityProfile.from_dict("2", {"name": "ellen smith", "year": "1985"}),
            ],
            "c",
        )

    def test_high_vs_low_entropy_attributes(self):
        entropies = attribute_entropies(self._collection(), source=0)
        assert entropies[(0, "name")] == pytest.approx(2.0)  # 4 equiprobable
        assert entropies[(0, "year")] == 0.0  # always "1985"

    def test_tokenless_attribute_zero(self):
        c = EntityCollection(
            [EntityProfile.from_dict("1", {"junk": "..."})], "c"
        )
        assert attribute_entropies(c, source=0)[(0, "junk")] == 0.0


class TestAggregateEntropies:
    def test_mean_over_members(self):
        part = AttributePartitioning(
            [{(0, "a"), (1, "b")}], glue=[(0, "c")]
        )
        values = {(0, "a"): 3.0, (1, "b"): 1.0, (0, "c"): 2.0}
        agg = aggregate_entropies(part, values)
        assert agg[1] == pytest.approx(2.0)
        assert agg[GLUE_CLUSTER_ID] == pytest.approx(2.0)

    def test_missing_attributes_count_as_zero(self):
        part = AttributePartitioning([{(0, "a"), (1, "b")}])
        agg = aggregate_entropies(part, {(0, "a"): 4.0})
        assert agg[1] == pytest.approx(2.0)

    def test_empty_glue_cluster(self):
        part = AttributePartitioning([{(0, "a"), (1, "b")}], glue=[])
        agg = aggregate_entropies(part, {(0, "a"): 4.0, (1, "b"): 4.0})
        assert agg[GLUE_CLUSTER_ID] == 0.0


class TestExtraction:
    def test_end_to_end(self, figure1_clean_clean):
        part = AttributePartitioning(
            [{(0, "Name"), (1, "name2")}],
            glue=[(0, "year"), (1, "birth year")],
        )
        enriched = extract_loose_schema_entropies(
            part,
            figure1_clean_clean.collection1,
            figure1_clean_clean.collection2,
        )
        # names carry more information than the year attributes
        assert enriched.entropy_of(1) > enriched.entropy_of(GLUE_CLUSTER_ID)
        # the original partitioning is untouched (neutral entropies)
        assert part.entropy_of(1) == 1.0
