"""Tests for the synthetic vocabulary and field samplers."""

import pytest

from repro.datasets import samplers as s
from repro.datasets.vocabulary import make_vocabulary
from repro.utils.rng import make_rng


class TestVocabulary:
    def test_deterministic_across_calls(self):
        assert make_vocabulary(7).last_names == make_vocabulary(7).last_names

    def test_different_seeds_differ(self):
        assert make_vocabulary(7).last_names != make_vocabulary(8).last_names

    def test_pool_sizes(self):
        v = make_vocabulary()
        assert len(v.first_names) == 400
        assert len(v.last_names) == 900
        assert len(v.genres) == 15

    def test_streets_embed_surnames(self):
        # the "Abram street" ambiguity: every street's first token is a
        # surname from the same world
        v = make_vocabulary()
        surnames = set(v.last_names)
        assert all(street.split()[0] in surnames for street in v.street_names)

    def test_words_are_lowercase_alpha(self):
        v = make_vocabulary()
        assert all(w.isalpha() and w.islower() for w in v.title_words[:100])


class TestSamplers:
    @pytest.fixture
    def env(self):
        return make_rng(1), make_vocabulary()

    def test_person_name_two_tokens(self, env):
        rng, v = env
        assert len(s.person_name(rng, v).split()) == 2

    def test_year_in_range(self, env):
        rng, v = env
        for _ in range(50):
            assert 1955 <= int(s.year(rng, v)) < 2016

    def test_title_length(self, env):
        rng, v = env
        for _ in range(50):
            assert 3 <= len(s.title(rng, v).split()) <= 9

    def test_author_list_one_to_three_names(self, env):
        rng, v = env
        for _ in range(20):
            names = s.author_list(rng, v).split(" and ")
            assert 1 <= len(names) <= 3

    def test_street_address_ends_with_number(self, env):
        rng, v = env
        assert s.street_address(rng, v).split()[-1].isdigit()

    def test_product_name_contains_brand(self, env):
        rng, v = env
        for _ in range(20):
            assert s.product_name(rng, v).split()[0] in v.brands

    def test_pages_format(self, env):
        rng, v = env
        start, end = s.pages(rng, v).split("-")
        assert int(start) < int(end)

    def test_categorical_field_stays_in_pool(self, env):
        rng, v = env
        sampler = s.categorical_field(("red", "green", "blue"), max_words=2)
        for _ in range(20):
            assert set(sampler(rng, v).split()) <= {"red", "green", "blue"}

    def test_categorical_field_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            s.categorical_field(())
