"""Tests for the command-line interface."""

import csv

import pytest

from repro.cli import main
from repro.data.io import load_collection, load_ground_truth


@pytest.fixture
def generated(tmp_path):
    """A small generated benchmark on disk."""
    outdir = tmp_path / "data"
    code = main(["generate", "--dataset", "prd", "--scale", "0.3",
                 "--outdir", str(outdir)])
    assert code == 0
    return outdir


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "meta-blocking" in result.stdout

    def test_no_command_shows_usage(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode != 0
        assert "usage:" in result.stderr


class TestGenerate:
    def test_writes_clean_clean_files(self, generated):
        assert (generated / "left.jsonl").exists()
        assert (generated / "right.jsonl").exists()
        assert (generated / "ground_truth.csv").exists()
        left = load_collection(generated / "left.jsonl")
        assert len(left) > 0

    def test_dirty_dataset_has_single_file(self, tmp_path):
        outdir = tmp_path / "dirty"
        assert main(["generate", "--dataset", "census", "--scale", "0.2",
                     "--outdir", str(outdir)]) == 0
        assert (outdir / "left.jsonl").exists()
        assert not (outdir / "right.jsonl").exists()
        truth = load_ground_truth(outdir / "ground_truth.csv", clean_clean=False)
        assert len(truth) > 0

    def test_rejects_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "nope", "--outdir", str(tmp_path)])


class TestRun:
    def test_writes_candidate_pairs(self, generated, tmp_path, capsys):
        output = tmp_path / "pairs.csv"
        code = main(["run", "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--output", str(output)])
        assert code == 0
        with output.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["id1", "id2"]
        assert len(rows) > 1
        assert "candidate pairs" in capsys.readouterr().out

    def test_missing_input_is_an_error_not_a_crash(self, tmp_path, capsys):
        code = main(["run", "--left", str(tmp_path / "absent.jsonl"),
                     "--output", str(tmp_path / "out.csv")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_reports_quality(self, generated, capsys):
        code = main(["evaluate",
                     "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--ground-truth", str(generated / "ground_truth.csv")])
        assert code == 0
        out = capsys.readouterr().out
        assert "PC=" in out and "PQ=" in out and "F1=" in out
        pc = float(out.split("PC=")[1].split()[0])
        assert pc > 0.8

    def test_dirty_evaluation(self, tmp_path, capsys):
        outdir = tmp_path / "dirty"
        main(["generate", "--dataset", "census", "--scale", "0.2",
              "--outdir", str(outdir)])
        code = main(["evaluate", "--left", str(outdir / "left.jsonl"),
                     "--ground-truth", str(outdir / "ground_truth.csv")])
        assert code == 0
        assert "PC=" in capsys.readouterr().out

    def test_optional_pairs_output(self, generated, tmp_path):
        output = tmp_path / "pairs.csv"
        main(["evaluate",
              "--left", str(generated / "left.jsonl"),
              "--right", str(generated / "right.jsonl"),
              "--ground-truth", str(generated / "ground_truth.csv"),
              "--output", str(output)])
        assert output.exists()

    def test_config_flags_accepted(self, generated, capsys):
        code = main(["evaluate",
                     "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--ground-truth", str(generated / "ground_truth.csv"),
                     "--induction", "ac", "--alpha", "0.8", "--no-entropy",
                     "--pruning-c", "3.0"])
        assert code == 0

    def test_blocking_flags_accepted(self, generated, capsys):
        code = main(["evaluate",
                     "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--ground-truth", str(generated / "ground_truth.csv"),
                     "--purging-ratio", "0.4", "--filtering-ratio", "0.7",
                     "--min-token-length", "3"])
        assert code == 0
        assert "PC=" in capsys.readouterr().out

    def test_registry_components_selectable(self, generated, capsys):
        code = main(["evaluate",
                     "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--ground-truth", str(generated / "ground_truth.csv"),
                     "--blocker", "token", "--weighting", "cbs",
                     "--pruning", "wnp1"])
        assert code == 0
        assert "PC=" in capsys.readouterr().out

    def test_custom_registered_weighting_usable(self, generated, capsys):
        from repro.core.registry import WEIGHTINGS

        name = "unit-cli-test"
        if name not in WEIGHTINGS:  # survive test reruns in one process
            WEIGHTINGS.register(
                name, lambda graph: {edge: 1.0 for edge, _ in graph.edges()}
            )
        code = main(["evaluate",
                     "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--ground-truth", str(generated / "ground_truth.csv"),
                     "--weighting", name])
        assert code == 0
        assert "PC=" in capsys.readouterr().out

    def test_backend_selectable_and_equivalent(self, generated, tmp_path):
        outputs = {}
        for backend, extra in (
            ("python", []),
            ("vectorized", []),
            # workers=1 keeps the CLI test in-process; the pool path is
            # covered by the conformance suite.
            ("parallel", ["--workers", "1", "--shard-size", "64"]),
        ):
            output = tmp_path / f"pairs-{backend}.csv"
            code = main(["evaluate",
                         "--left", str(generated / "left.jsonl"),
                         "--right", str(generated / "right.jsonl"),
                         "--ground-truth", str(generated / "ground_truth.csv"),
                         "--backend", backend,
                         "--output", str(output), *extra])
            assert code == 0
            with output.open() as handle:
                outputs[backend] = sorted(csv.reader(handle))
        assert outputs["python"] == outputs["vectorized"]
        assert outputs["python"] == outputs["parallel"]

    def test_invalid_workers_reported_as_error(self, generated, capsys):
        code = main(["evaluate",
                     "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--ground-truth", str(generated / "ground_truth.csv"),
                     "--backend", "parallel", "--workers", "0"])
        assert code == 1
        assert "workers" in capsys.readouterr().err

    def test_workers_without_parallel_backend_is_an_error(self, generated,
                                                          capsys):
        # Not silently serial: the knob only exists on the parallel
        # backend, so forgetting --backend parallel must fail loudly.
        code = main(["evaluate",
                     "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--ground-truth", str(generated / "ground_truth.csv"),
                     "--workers", "4"])
        assert code == 1
        assert "parallel" in capsys.readouterr().err

    def test_unknown_backend_rejected(self, generated):
        with pytest.raises(SystemExit):
            main(["evaluate",
                  "--left", str(generated / "left.jsonl"),
                  "--right", str(generated / "right.jsonl"),
                  "--ground-truth", str(generated / "ground_truth.csv"),
                  "--backend", "gpu"])

    def test_unregistered_component_rejected(self, generated):
        with pytest.raises(SystemExit):
            main(["evaluate",
                  "--left", str(generated / "left.jsonl"),
                  "--right", str(generated / "right.jsonl"),
                  "--ground-truth", str(generated / "ground_truth.csv"),
                  "--blocker", "sorted-neighborhood"])

    def test_invalid_ratio_reported_as_error(self, generated, capsys):
        code = main(["evaluate",
                     "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--ground-truth", str(generated / "ground_truth.csv"),
                     "--purging-ratio", "0.0"])
        assert code == 1
        assert "purging_ratio" in capsys.readouterr().err

    def test_stage_report_flag(self, generated, tmp_path, capsys):
        code = main(["run", "--left", str(generated / "left.jsonl"),
                     "--right", str(generated / "right.jsonl"),
                     "--stage-report",
                     "--output", str(tmp_path / "pairs.csv")])
        assert code == 0
        out = capsys.readouterr().out
        assert "schema-extraction" in out and "meta-blocking" in out


class TestHelp:
    def test_help_lists_registered_components(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "blockers:" in out and "suffix-array" in out
        assert "weightings:" in out and "chi_h" in out
        assert "prunings:" in out and "blast" in out
        assert "backends:" in out and "vectorized" in out
        assert "stream views:" in out and "exact" in out

    def test_help_lists_stream_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "stream" in capsys.readouterr().out


class TestStream:
    @pytest.fixture
    def dirty_stream(self, tmp_path):
        outdir = tmp_path / "data"
        assert main(["generate", "--dataset", "census", "--scale", "0.3",
                     "--outdir", str(outdir)]) == 0
        return outdir / "left.jsonl"

    def test_replays_and_emits_candidates(self, dirty_stream, tmp_path, capsys):
        import json

        output = tmp_path / "matches.jsonl"
        code = main(["stream", "--input", str(dirty_stream),
                     "--output", str(output)])
        assert code == 0
        assert "queries/s" in capsys.readouterr().out
        lines = [json.loads(line) for line in output.read_text().splitlines()]
        assert all(line["op"] == "upsert" for line in lines)
        assert any(line["candidates"] for line in lines)
        # Arrival-time symmetry: every emitted partner arrived earlier.
        seen: set[str] = set()
        for line in lines:
            for candidate in line["candidates"]:
                assert candidate["id"] in seen
            seen.add(line["id"])

    def test_gzip_input_and_output(self, dirty_stream, tmp_path):
        import gzip
        import shutil

        gz_input = tmp_path / "stream.jsonl.gz"
        with dirty_stream.open("rb") as src, gzip.open(gz_input, "wb") as dst:
            shutil.copyfileobj(src, dst)
        output = tmp_path / "matches.jsonl.gz"
        assert main(["stream", "--input", str(gz_input),
                     "--output", str(output), "--consistency", "exact"]) == 0
        with gzip.open(output, "rt", encoding="utf-8") as handle:
            assert sum(1 for _ in handle) > 0

    def test_snapshot_written_and_restored(self, dirty_stream, tmp_path, capsys):
        snapshot = tmp_path / "snap.json.gz"
        assert main(["stream", "--input", str(dirty_stream),
                     "--snapshot", str(snapshot), "--no-query"]) == 0
        assert snapshot.exists()
        assert main(["stream", "--input", str(dirty_stream),
                     "--snapshot", str(snapshot)]) == 0
        assert "restored" in capsys.readouterr().out

    def test_missing_input_is_an_error_not_a_crash(self, tmp_path, capsys):
        code = main(["stream", "--input", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_edge_centric_pruning_reported_as_error(self, dirty_stream, capsys):
        code = main(["stream", "--input", str(dirty_stream),
                     "--pruning", "wep"])
        assert code == 1
        assert "node-centric" in capsys.readouterr().err

    def test_ejs_weighting_reported_as_error(self, dirty_stream, capsys):
        code = main(["stream", "--input", str(dirty_stream),
                     "--weighting", "ejs"])
        assert code == 1
        assert "EJS" in capsys.readouterr().err
