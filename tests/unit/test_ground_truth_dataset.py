"""Tests for GroundTruth and ERDataset."""

import pytest

from repro.data import EntityCollection, EntityProfile, ERDataset, GroundTruth


def _collection(prefix: str, n: int) -> EntityCollection:
    return EntityCollection(
        [EntityProfile.from_dict(f"{prefix}{i}", {"v": f"w{i}"}) for i in range(n)],
        prefix,
    )


class TestGroundTruth:
    def test_clean_clean_pairs_are_ordered(self):
        gt = GroundTruth([("a", "b")], clean_clean=True)
        assert ("a", "b") in gt
        assert ("b", "a") not in gt

    def test_dirty_pairs_are_unordered(self):
        gt = GroundTruth([("b", "a")], clean_clean=False)
        assert ("a", "b") in gt and ("b", "a") in gt

    def test_dirty_rejects_self_match(self):
        with pytest.raises(ValueError, match="self-match"):
            GroundTruth([("a", "a")], clean_clean=False)

    def test_deduplicates(self):
        gt = GroundTruth([("a", "b"), ("b", "a")], clean_clean=False)
        assert len(gt) == 1

    def test_contains_non_pair(self):
        gt = GroundTruth([("a", "b")])
        assert "ab" not in gt


class TestERDatasetCleanClean:
    def test_global_indexing(self):
        ds = ERDataset(_collection("a", 3), _collection("b", 2),
                       GroundTruth([("a0", "b0")]), "t")
        assert ds.num_profiles == 5
        assert ds.offset2 == 3
        assert ds.profile(0).profile_id == "a0"
        assert ds.profile(3).profile_id == "b0"
        assert ds.source_of(2) == 0
        assert ds.source_of(3) == 1

    def test_truth_pairs_are_global_indices(self):
        ds = ERDataset(_collection("a", 3), _collection("b", 2),
                       GroundTruth([("a1", "b1")]), "t")
        assert ds.truth_pairs == frozenset({(1, 4)})

    def test_unresolvable_truth_id_raises(self):
        ds = ERDataset(_collection("a", 2), _collection("b", 2),
                       GroundTruth([("a0", "zzz")]), "t")
        with pytest.raises(KeyError):
            _ = ds.truth_pairs

    def test_brute_force_comparisons(self):
        ds = ERDataset(_collection("a", 3), _collection("b", 4),
                       GroundTruth([]), "t")
        assert ds.brute_force_comparisons() == 12

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ERDataset(_collection("a", 2), _collection("b", 2),
                      GroundTruth([], clean_clean=False), "t")

    def test_iter_profiles_covers_both_sources(self):
        ds = ERDataset(_collection("a", 2), _collection("b", 2),
                       GroundTruth([]), "t")
        indices = [i for i, _ in ds.iter_profiles()]
        assert indices == [0, 1, 2, 3]


class TestERDatasetDirty:
    def test_single_collection(self):
        ds = ERDataset(_collection("d", 4), None,
                       GroundTruth([("d0", "d3")], clean_clean=False), "t")
        assert not ds.is_clean_clean
        assert ds.num_profiles == 4
        assert ds.truth_pairs == frozenset({(0, 3)})

    def test_brute_force_comparisons(self):
        ds = ERDataset(_collection("d", 5), None,
                       GroundTruth([], clean_clean=False), "t")
        assert ds.brute_force_comparisons() == 10

    def test_profile_out_of_range(self):
        ds = ERDataset(_collection("d", 2), None,
                       GroundTruth([], clean_clean=False), "t")
        with pytest.raises(IndexError):
            ds.profile(5)

    def test_truth_pairs_canonicalized(self):
        ds = ERDataset(_collection("d", 3), None,
                       GroundTruth([("d2", "d0")], clean_clean=False), "t")
        assert ds.truth_pairs == frozenset({(0, 2)})
