"""Edge-case tests for the weighting schemes beyond the happy path."""

from repro.blocking import TokenBlocking
from repro.blocking.base import Block, BlockCollection
from repro.graph import BlockingGraph, WeightingScheme, compute_weights


def _single_block_graph() -> BlockingGraph:
    """Degenerate: one block, both nodes in 100% of blocks."""
    return BlockingGraph(
        BlockCollection([Block("only", frozenset({0}), frozenset({5}))], True)
    )


class TestDegenerateGraphs:
    def test_single_block_all_schemes_finite(self):
        graph = _single_block_graph()
        for scheme in WeightingScheme:
            weights = compute_weights(graph, scheme)
            assert all(w == w and abs(w) != float("inf") for w in weights.values())

    def test_single_block_chi_h_is_zero(self):
        # co-occurrence cannot exceed expectation when |B| = |B_i| = |B_j|
        weights = compute_weights(_single_block_graph(), WeightingScheme.CHI_H)
        assert weights[(0, 5)] == 0.0

    def test_js_is_one_for_identical_block_sets(self):
        weights = compute_weights(_single_block_graph(), WeightingScheme.JS)
        assert weights[(0, 5)] == 1.0

    def test_empty_collection_yields_no_weights(self):
        graph = BlockingGraph(BlockCollection([], True))
        for scheme in WeightingScheme:
            assert compute_weights(graph, scheme) == {}


class TestCleanCleanFigure1:
    """The clean-clean framing drops within-source edges; weights on the
    remaining edges must match the dirty framing exactly."""

    def test_cross_source_weights_match_dirty(self, figure1_clean_clean,
                                              figure1_dirty):
        cc = BlockingGraph(TokenBlocking().build(figure1_clean_clean))
        dd = BlockingGraph(TokenBlocking().build(figure1_dirty))
        w_cc = compute_weights(cc, WeightingScheme.CBS)
        w_dd = compute_weights(dd, WeightingScheme.CBS)
        for edge, value in w_cc.items():
            assert w_dd[edge] == value

    def test_clean_clean_has_no_within_source_edges(self, figure1_clean_clean):
        graph = BlockingGraph(TokenBlocking().build(figure1_clean_clean))
        offset = figure1_clean_clean.offset2
        for (i, j), _ in graph.edges():
            assert i < offset <= j


class TestDeterminism:
    def test_weights_are_reproducible(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        for scheme in WeightingScheme:
            w1 = compute_weights(BlockingGraph(blocks), scheme)
            w2 = compute_weights(BlockingGraph(blocks), scheme)
            assert w1 == w2

    def test_negative_association_zeroed_only_for_chi(self, figure1_dirty):
        """The one-sided rule applies to CHI_H; traditional schemes keep
        their positive weights for the same anti-correlated edge."""
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        chi = compute_weights(graph, WeightingScheme.CHI_H)
        cbs = compute_weights(graph, WeightingScheme.CBS)
        # p1-p2 (edge (0,1)) co-occurs less than expected -> chi zero
        assert chi[(0, 1)] == 0.0
        assert cbs[(0, 1)] == 1.0


class TestEntropyInteraction:
    def test_zero_entropy_clusters_suppress_edges(self):
        """An edge supported only by zero-entropy keys weighs zero under
        CHI_H: uninformative attributes cannot justify a comparison."""
        blocks = BlockCollection(
            [
                Block("a#1", frozenset({0}), frozenset({5})),
                Block("b#2", frozenset({1}), frozenset({6})),
                Block("c#2", frozenset({1}), frozenset({6})),
            ],
            True,
        )
        entropy = {"a#1": 0.0, "b#2": 2.0, "c#2": 2.0}
        graph = BlockingGraph(blocks, key_entropy=entropy.__getitem__)
        weights = compute_weights(graph, WeightingScheme.CHI_H)
        assert weights[(0, 5)] == 0.0
        assert weights[(1, 6)] > 0.0
