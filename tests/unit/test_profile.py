"""Tests for repro.data.profile.EntityProfile."""

import pytest

from repro.data.profile import EntityProfile


class TestConstruction:
    def test_from_pairs(self):
        p = EntityProfile("p1", (("name", "John"), ("name", "Jon")))
        assert p.values("name") == ["John", "Jon"]

    def test_from_dict_single_values(self):
        p = EntityProfile.from_dict("p1", {"name": "John", "year": "1985"})
        assert p.values("year") == ["1985"]

    def test_from_dict_multi_values(self):
        p = EntityProfile.from_dict("p1", {"author": ["ann", "bob"]})
        assert p.values("author") == ["ann", "bob"]

    def test_blank_values_dropped(self):
        p = EntityProfile("p1", (("name", "  "), ("city", "rome")))
        assert p.attribute_names == {"city"}

    def test_values_coerced_to_str(self):
        p = EntityProfile("p1", (("year", 1985),))  # type: ignore[arg-type]
        assert p.values("year") == ["1985"]

    def test_immutable(self):
        p = EntityProfile("p1", (("a", "b"),))
        with pytest.raises(AttributeError):
            p.profile_id = "p2"  # type: ignore[misc]


class TestAccessors:
    def test_attribute_names(self):
        p = EntityProfile.from_dict("p1", {"name": "x", "year": "1"})
        assert p.attribute_names == {"name", "year"}

    def test_values_of_missing_attribute(self):
        p = EntityProfile.from_dict("p1", {"name": "x"})
        assert p.values("nope") == []

    def test_len_counts_pairs(self):
        p = EntityProfile("p1", (("a", "1"), ("a", "2"), ("b", "3")))
        assert len(p) == 3

    def test_iter_pairs_preserves_order(self):
        pairs = (("b", "2"), ("a", "1"))
        p = EntityProfile("p1", pairs)
        assert tuple(p.iter_pairs()) == pairs


class TestTokenViews:
    def test_tokens_unions_all_values(self):
        p = EntityProfile.from_dict("p1", {"name": "John Abram", "addr": "Abram st"})
        assert p.tokens() == {"john", "abram", "st"}

    def test_tokens_by_attribute_separates_roles(self):
        p = EntityProfile.from_dict("p1", {"name": "John Abram", "addr": "Abram st"})
        by_attr = p.tokens_by_attribute()
        assert by_attr["name"] == {"john", "abram"}
        assert by_attr["addr"] == {"abram", "st"}

    def test_text_concatenates_values(self):
        p = EntityProfile("p1", (("a", "x y"), ("b", "z")))
        assert p.text() == "x y z"

    def test_empty_profile(self):
        p = EntityProfile("p1", ())
        assert p.tokens() == set()
        assert p.text() == ""

    def test_tokens_memoized(self):
        p = EntityProfile.from_dict("p1", {"name": "John Abram"})
        first = p.tokens()
        assert p.tokens() is first  # same object, no re-tokenization

    def test_tokens_by_attribute_memoized(self):
        p = EntityProfile.from_dict("p1", {"name": "John Abram"})
        first = p.tokens_by_attribute()
        assert p.tokens_by_attribute() is first

    def test_token_views_are_read_only(self):
        import pytest

        p = EntityProfile.from_dict("p1", {"name": "John Abram"})
        with pytest.raises(AttributeError):
            p.tokens().add("extra")  # frozenset
        by_attr = p.tokens_by_attribute()
        with pytest.raises(TypeError):
            by_attr["name"] = frozenset()  # mapping proxy
        with pytest.raises(AttributeError):
            by_attr["name"].add("extra")  # frozenset values

    def test_memo_fields_do_not_affect_equality_or_hash(self):
        a = EntityProfile.from_dict("p1", {"name": "John"})
        b = EntityProfile.from_dict("p1", {"name": "John"})
        a.tokens()  # populate only a's cache
        assert a == b
        assert hash(a) == hash(b)
