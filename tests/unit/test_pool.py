"""Unit tests: shared-memory publication and the persistent worker pool.

The end-to-end bit-identity of ``pool="persistent"`` is covered by the
conformance matrix and the reliability suite; these tests pin the
primitives — segment round trips, manifest shape, owner-side accounting,
singleton growth — on small arrays.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graph.pool import (
    AttachedArrays,
    BlobSegment,
    PersistentPool,
    SharedArrayBundle,
    add_shutdown_hook,
    get_pool,
    live_segments,
    read_blob,
    shutdown_pool,
)


@pytest.fixture(autouse=True)
def _pool_teardown():
    """Every test leaves no singleton pool and no owned segments behind."""
    yield
    shutdown_pool()
    assert live_segments() == frozenset()


class TestSharedArrayBundle:
    def test_round_trip_preserves_values_and_dtypes(self):
        arrays = {
            "ptr": np.array([0, 2, 5], dtype=np.int64),
            "ids": np.array([[1, 2], [3, 4]], dtype=np.int32),
            "weights": np.array([0.5, 1.25, -3.0], dtype=np.float64),
            "flags": np.array([True, False], dtype=np.bool_),
        }
        bundle = SharedArrayBundle.publish(arrays)
        try:
            attached = AttachedArrays(bundle.manifest)
            try:
                assert set(attached.arrays) == set(arrays)
                for key, original in arrays.items():
                    got = attached.arrays[key]
                    assert got.dtype == original.dtype
                    assert got.shape == original.shape
                    assert np.array_equal(got, original)
            finally:
                attached.close()
        finally:
            bundle.close()

    def test_empty_arrays_travel_inline(self):
        arrays = {"empty": np.zeros(0, dtype=np.float64)}
        bundle = SharedArrayBundle.publish(arrays)
        try:
            spec = bundle.manifest["empty"]
            assert spec.name is None  # no zero-byte segment exists
            attached = AttachedArrays(bundle.manifest)
            try:
                rebuilt = attached.arrays["empty"]
                assert rebuilt.size == 0
                assert rebuilt.dtype == np.float64
            finally:
                attached.close()
        finally:
            bundle.close()

    def test_manifest_is_picklable(self):
        bundle = SharedArrayBundle.publish(
            {"a": np.arange(4, dtype=np.int64)}
        )
        try:
            manifest = pickle.loads(pickle.dumps(bundle.manifest))
            attached = AttachedArrays(manifest)
            try:
                assert np.array_equal(
                    attached.arrays["a"], np.arange(4, dtype=np.int64)
                )
            finally:
                attached.close()
        finally:
            bundle.close()

    def test_live_segment_accounting_and_idempotent_close(self):
        before = live_segments()
        bundle = SharedArrayBundle.publish(
            {
                "a": np.arange(3, dtype=np.int64),
                "b": np.arange(5, dtype=np.float64),
                "empty": np.zeros(0, dtype=np.int32),
            }
        )
        created = live_segments() - before
        assert len(created) == 2  # the empty array owns no segment
        bundle.close()
        assert live_segments() == before
        bundle.close()  # second close is a no-op
        assert live_segments() == before

    def test_attached_arrays_alias_the_published_bytes(self):
        bundle = SharedArrayBundle.publish(
            {"a": np.arange(6, dtype=np.int64)}
        )
        try:
            attached = AttachedArrays(bundle.manifest)
            try:
                # Zero-copy contract: the view maps the segment, it does
                # not own its data.
                assert not attached.arrays["a"].flags.owndata
            finally:
                attached.close()
        finally:
            bundle.close()


class TestBlobSegment:
    def test_round_trip(self):
        payload = pickle.dumps({"scheme": "ECBS", "num_ids": 17})
        blob = BlobSegment(payload)
        try:
            assert read_blob(blob.name) == payload
        finally:
            blob.close()

    def test_empty_payload(self):
        blob = BlobSegment(b"")
        try:
            assert read_blob(blob.name) == b""
        finally:
            blob.close()

    def test_close_is_idempotent_and_accounted(self):
        before = live_segments()
        blob = BlobSegment(b"xyz")
        assert blob.name in live_segments()
        blob.close()
        blob.close()
        assert live_segments() == before


def _double(value):
    return value * 2


class TestPersistentPool:
    def test_rejects_nonpositive_processes(self):
        with pytest.raises(ValueError, match="positive"):
            PersistentPool(0)

    def test_apply_async_runs_tasks(self):
        pool = PersistentPool(1)
        try:
            handles = [pool.apply_async(_double, (k,)) for k in range(4)]
            assert [h.get(30) for h in handles] == [0, 2, 4, 6]
        finally:
            pool.shutdown()

    def test_restart_yields_a_usable_pool(self):
        pool = PersistentPool(1)
        try:
            assert pool.apply_async(_double, (3,)).get(30) == 6
            pool.restart()
            assert pool.apply_async(_double, (5,)).get(30) == 10
        finally:
            pool.shutdown()


class TestSingleton:
    def test_get_pool_reuses_and_grows(self):
        small = get_pool(1)
        assert get_pool(1) is small  # same size: reuse
        grown = get_pool(2)
        assert grown is not small  # outgrown: rebuilt
        assert grown.processes == 2
        assert get_pool(1) is grown  # grow-only: bigger pool serves 1

    def test_shutdown_hooks_run_once_registered(self):
        calls: list[str] = []

        def hook() -> None:
            calls.append("ran")

        add_shutdown_hook(hook)
        add_shutdown_hook(hook)  # idempotent registration
        try:
            shutdown_pool()
            assert calls == ["ran"]
        finally:
            from repro.graph import pool as pool_module

            if hook in pool_module._SHUTDOWN_HOOKS:
                pool_module._SHUTDOWN_HOOKS.remove(hook)
