"""Tests for BlastConfig validation and the Blast pipeline plumbing."""

import pytest

from repro.core import Blast, BlastConfig, prepare_blocks
from repro.graph import WeightingScheme
from repro.metrics import evaluate_blocks


class TestBlastConfig:
    def test_defaults_match_the_paper(self):
        config = BlastConfig()
        assert config.alpha == 0.9
        assert config.pruning_c == 2.0
        assert config.pruning_d == 2.0
        assert config.filtering_ratio == 0.8
        assert config.purging_ratio == 0.5
        assert config.weighting is WeightingScheme.CHI_H

    @pytest.mark.parametrize("kwargs", [
        {"induction": "magic"},
        {"representation": "word2vec"},
        {"representation": "tfidf", "use_lsh": True},
        {"alpha": 0.0},
        {"alpha": 1.5},
        {"lsh_threshold": 0.0},
        {"lsh_threshold": 1.0},
        {"lsh_num_hashes": 0},
        {"min_token_length": 0},
        {"purging_ratio": 0.0},
        {"purging_ratio": 1.1},
        {"filtering_ratio": 0.0},
        {"filtering_ratio": 1.0001},
        {"pruning_c": 0.0},
        {"pruning_d": -1.0},
        {"weighting": "tf-idf"},
        {"backend": ""},
        {"workers": 0},
        {"workers": -2},
        {"shard_size": 0},
        # valid knob values, but meaningless without the parallel backend
        {"workers": 2},
        {"backend": "vectorized", "shard_size": 100},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BlastConfig(**kwargs)

    def test_validation_errors_name_the_offending_value(self):
        with pytest.raises(ValueError, match="'magic'"):
            BlastConfig(induction="magic")
        with pytest.raises(ValueError, match="0.0"):
            BlastConfig(purging_ratio=0.0)
        with pytest.raises(ValueError, match="chi_h"):
            BlastConfig(weighting="nope")  # lists the valid schemes

    def test_weighting_accepts_registry_names(self):
        assert BlastConfig(weighting="cbs").weighting is WeightingScheme.CBS
        assert BlastConfig(weighting="chi_h").weighting is WeightingScheme.CHI_H

    def test_boundary_values_accepted(self):
        config = BlastConfig(purging_ratio=1.0, filtering_ratio=1.0,
                             alpha=1.0, min_token_length=1)
        assert config.purging_ratio == 1.0

    def test_parallel_knobs_accepted(self):
        config = BlastConfig(backend="parallel", workers=4, shard_size=1000)
        assert config.workers == 4
        assert config.backend_options() == {"workers": 4, "shard_size": 1000}

    def test_frozen(self):
        config = BlastConfig()
        with pytest.raises(AttributeError):
            config.alpha = 0.5  # type: ignore[misc]


class TestBlastPipeline:
    def test_phases_produce_consistent_result(self, tiny_clean_clean):
        result = Blast().run(tiny_clean_clean)
        assert set(result.phase_seconds) == {"schema", "blocking", "metablocking"}
        assert result.overhead_seconds >= 0
        # final blocks are single-comparison pairs
        assert result.blocks.aggregate_cardinality == len(result.blocks)

    def test_partitioning_aligns_tiny_schema(self, tiny_clean_clean):
        result = Blast().run(tiny_clean_clean)
        part = result.partitioning
        assert part.cluster_of(0, "name") == part.cluster_of(1, "fullname") != 0
        assert part.cluster_of(0, "city") == part.cluster_of(1, "town") != 0

    def test_finds_the_matches(self, tiny_clean_clean):
        result = Blast().run(tiny_clean_clean)
        quality = evaluate_blocks(result.blocks, tiny_clean_clean)
        assert quality.pair_completeness == 1.0

    def test_ac_induction_also_works(self, tiny_clean_clean):
        result = Blast(BlastConfig(induction="ac")).run(tiny_clean_clean)
        assert evaluate_blocks(result.blocks, tiny_clean_clean).pair_completeness == 1.0

    def test_dirty_mode(self, figure1_dirty):
        result = Blast().run(figure1_dirty)
        quality = evaluate_blocks(result.blocks, figure1_dirty)
        assert quality.pair_completeness == 1.0

    def test_entropy_off_still_runs(self, tiny_clean_clean):
        result = Blast(BlastConfig(use_entropy=False)).run(tiny_clean_clean)
        assert evaluate_blocks(result.blocks, tiny_clean_clean).pair_completeness > 0


class TestPrepareBlocks:
    def test_plain_token_blocking_baseline(self, tiny_clean_clean):
        blocks = prepare_blocks(tiny_clean_clean)
        assert blocks.aggregate_cardinality > 0

    def test_partitioning_reduces_comparisons(self, figure1_clean_clean):
        from repro.core import Blast

        partitioning = Blast().extract_loose_schema(figure1_clean_clean)
        plain = prepare_blocks(figure1_clean_clean)
        aware = prepare_blocks(figure1_clean_clean, partitioning)
        assert aware.aggregate_cardinality <= plain.aggregate_cardinality
