"""Tests for the stage-based pipeline API (repro.core.stages)."""

import pytest

from repro.blocking.qgrams import QGramsBlocking
from repro.core import (
    Blast,
    BlastConfig,
    BlockerStage,
    BlockFilteringStage,
    BlockPurgingStage,
    MetaBlockingStage,
    Pipeline,
    PipelineContext,
    PipelineError,
    SchemaAwareBlockingStage,
    SchemaExtraction,
    TokenBlockingStage,
    build_pipeline,
    compose,
    prepare_blocks,
)
from repro.datasets import load_clean_clean


def canonical(collection):
    """A comparable, fully-ordered rendering of a block collection."""
    return [
        (block.key, sorted(block.left), sorted(block.right or []))
        for block in collection
    ]


@pytest.fixture(scope="module")
def seeded_benchmark():
    """A seeded real benchmark dataset (acceptance-criterion workload)."""
    return load_clean_clean("ar1", scale=0.2, seed=42)


class TestPipelineEquivalence:
    def test_default_pipeline_matches_blast_run(self, seeded_benchmark):
        facade = Blast().run(seeded_benchmark)
        pipeline = Blast.default_pipeline().run(seeded_benchmark)
        assert canonical(pipeline.blocks) == canonical(facade.blocks)
        assert canonical(pipeline.initial_blocks) == canonical(
            facade.initial_blocks
        )

    def test_registry_resolved_pipeline_matches_blast_run(self, seeded_benchmark):
        config = BlastConfig()
        facade = Blast(config).run(seeded_benchmark)
        resolved = build_pipeline(
            config, blocker="schema-aware", weighting="chi_h", pruning="blast"
        ).run(seeded_benchmark)
        assert canonical(resolved.blocks) == canonical(facade.blocks)

    def test_explicit_stage_list_matches_blast_run(self, seeded_benchmark):
        config = BlastConfig()
        explicit = Pipeline([
            SchemaExtraction(config),
            SchemaAwareBlockingStage(min_token_length=config.min_token_length),
            BlockPurgingStage(max_profile_ratio=config.purging_ratio),
            BlockFilteringStage(ratio=config.filtering_ratio),
            MetaBlockingStage.from_config(config),
        ]).run(seeded_benchmark)
        facade = Blast(config).run(seeded_benchmark)
        assert canonical(explicit.blocks) == canonical(facade.blocks)

    def test_prepare_blocks_matches_pipeline_composition(self, seeded_benchmark):
        via_function = prepare_blocks(seeded_benchmark)
        context = PipelineContext(seeded_benchmark)
        Pipeline([
            TokenBlockingStage(),
            BlockPurgingStage(),
            BlockFilteringStage(),
        ]).execute(context)
        assert canonical(context.blocks) == canonical(via_function)


class TestStageReports:
    def test_reports_cover_every_stage_in_order(self, tiny_clean_clean):
        result = Blast().run(tiny_clean_clean)
        assert [r.stage for r in result.stage_reports] == [
            "schema-extraction",
            "schema-aware-blocking",
            "block-purging",
            "block-filtering",
            "meta-blocking",
        ]
        assert all(r.seconds >= 0 for r in result.stage_reports)

    def test_block_statistics_flow_between_stages(self, tiny_clean_clean):
        result = Blast().run(tiny_clean_clean)
        schema, blocking, purging, filtering, meta = result.stage_reports
        # the schema stage touches no blocks
        assert schema.blocks_in is None and schema.blocks_out is None
        # the first blocking stage has no block input but produces some
        assert blocking.blocks_in is None
        assert blocking.blocks_out > 0
        # each later stage's input equals the previous stage's output
        assert purging.blocks_in == blocking.blocks_out
        assert filtering.blocks_in == purging.blocks_out
        assert meta.blocks_in == filtering.blocks_out
        assert meta.comparisons_in == filtering.comparisons_out
        # final collection is redundancy-free: one comparison per block
        assert meta.comparisons_out == meta.blocks_out == len(result.blocks)

    def test_phase_seconds_aggregates_reports(self, tiny_clean_clean):
        result = Blast().run(tiny_clean_clean)
        assert set(result.phase_seconds) == {"schema", "blocking", "metablocking"}
        assert result.overhead_seconds == pytest.approx(
            sum(r.seconds for r in result.stage_reports)
        )

    def test_report_renders_every_stage(self, tiny_clean_clean):
        result = Blast().run(tiny_clean_clean)
        text = result.report()
        for report in result.stage_reports:
            assert report.stage in text
        assert "total" in text


class TestPipelineValidation:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Pipeline([])

    def test_non_stage_rejected(self):
        with pytest.raises(TypeError, match="Stage protocol"):
            Pipeline([object()])

    def test_run_without_blocking_stage_fails(self, tiny_clean_clean):
        with pytest.raises(PipelineError, match="no block collection"):
            Pipeline([SchemaExtraction()]).run(tiny_clean_clean)

    def test_schema_aware_blocking_needs_partitioning(self, tiny_clean_clean):
        with pytest.raises(PipelineError, match="schema-aware-blocking"):
            Pipeline([SchemaAwareBlockingStage()]).run(tiny_clean_clean)

    def test_meta_blocking_needs_blocks(self, tiny_clean_clean):
        with pytest.raises(PipelineError, match="meta-blocking"):
            MetaBlockingStage().apply(PipelineContext(tiny_clean_clean))


class TestStageAdapters:
    def test_blocker_stage_wraps_any_blocker(self, tiny_clean_clean):
        result = Pipeline([
            BlockerStage(QGramsBlocking(q=3), name="qgrams"),
            BlockPurgingStage(),
            BlockFilteringStage(),
            MetaBlockingStage(),
        ]).run(tiny_clean_clean)
        assert len(result.blocks) > 0
        assert result.partitioning is None
        assert result.stage_reports[0].stage == "qgrams"

    def test_blocker_stage_rejects_non_blockers(self):
        with pytest.raises(TypeError, match="build"):
            BlockerStage(object())

    def test_custom_callable_weighting(self, tiny_clean_clean):
        def unit_weights(graph):
            return {edge: 1.0 for edge, _ in graph.edges()}

        result = Pipeline([
            TokenBlockingStage(),
            MetaBlockingStage(weighting=unit_weights),
        ]).run(tiny_clean_clean)
        # every edge has the maximal weight, so every edge survives
        assert len(result.blocks) == len(result.initial_blocks.distinct_pairs())

    def test_compose_flattens_nested_sequences(self):
        pipeline = compose(
            TokenBlockingStage(), [BlockPurgingStage(), BlockFilteringStage()]
        )
        assert pipeline.stage_names == (
            "token-blocking", "block-purging", "block-filtering"
        )

    def test_duck_typed_stage(self, tiny_clean_clean):
        class UpperBound:
            name = "upper-bound"
            phase = "blocking"

            def apply(self, context):
                context.blocks = context.blocks.filter_blocks(
                    lambda block: block.num_comparisons <= 2
                )

        result = Pipeline([TokenBlockingStage(), UpperBound()]).run(
            tiny_clean_clean
        )
        assert all(b.num_comparisons <= 2 for b in result.blocks)
        assert result.stage_reports[1].stage == "upper-bound"


class TestAblationCompositions:
    """The Figure 8 configurations as stage swaps (see DESIGN.md)."""

    def test_chi_ablation_entropy_off(self, tiny_clean_clean):
        chi = Pipeline([
            SchemaExtraction(),
            SchemaAwareBlockingStage(),
            BlockPurgingStage(),
            BlockFilteringStage(),
            MetaBlockingStage(use_entropy=False),
        ]).run(tiny_clean_clean)
        assert len(chi.blocks) > 0

    def test_wsh_ablation_entropy_boosted_traditional(self, tiny_clean_clean):
        from repro.graph import WeightingScheme

        wsh = Pipeline([
            SchemaExtraction(),
            SchemaAwareBlockingStage(),
            BlockPurgingStage(),
            BlockFilteringStage(),
            MetaBlockingStage(
                weighting=WeightingScheme.JS, entropy_boost=True
            ),
        ]).run(tiny_clean_clean)
        assert len(wsh.blocks) > 0
