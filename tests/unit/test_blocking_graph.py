"""Tests for the blocking graph construction."""

import pytest

from repro.blocking import TokenBlocking
from repro.blocking.base import Block, BlockCollection
from repro.graph import BlockingGraph


class TestFigure1Graph:
    def test_edge_set_matches_figure_1c(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        edges = {edge for edge, _ in graph.edges()}
        # all 6 pairs of the 4 profiles co-occur (everyone shares "abram")
        assert edges == {(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)}

    def test_shared_block_counts_match_figure_1c(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        cbs = {edge: s.shared_blocks for edge, s in graph.edges()}
        assert cbs[(0, 2)] == 4  # p1-p3
        assert cbs[(1, 3)] == 4  # p2-p4
        assert cbs[(0, 3)] == 3  # p1-p4
        assert cbs[(1, 2)] == 4  # p2-p3
        assert cbs[(0, 1)] == 1  # p1-p2 (only "abram")
        assert cbs[(2, 3)] == 1  # p3-p4

    def test_node_blocks_match_table_1(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        # Table 1's example column: n1. = |B_p1| = 6, n.1 = |B_p3| = 7,
        # n.. = |B| = 12.
        assert graph.node_blocks[0] == 6
        assert graph.node_blocks[2] == 7
        assert graph.num_blocks == 12


class TestAccumulation:
    def test_arcs_mass(self):
        # one block of 2 comparisons and one of 1: edge (0, 5) in both.
        blocks = BlockCollection(
            [
                Block("a", frozenset({0}), frozenset({5, 6})),
                Block("b", frozenset({0}), frozenset({5})),
            ],
            True,
        )
        graph = BlockingGraph(blocks)
        assert graph.stats((0, 5)).arcs_mass == pytest.approx(0.5 + 1.0)
        assert graph.stats((0, 6)).arcs_mass == pytest.approx(0.5)

    def test_entropy_mass_uses_key_entropy(self):
        blocks = BlockCollection(
            [
                Block("high#1", frozenset({0}), frozenset({5})),
                Block("low#2", frozenset({0}), frozenset({5})),
            ],
            True,
        )
        entropies = {"high#1": 3.0, "low#2": 1.0}
        graph = BlockingGraph(blocks, key_entropy=entropies.__getitem__)
        assert graph.stats((0, 5)).mean_entropy == pytest.approx(2.0)

    def test_default_entropy_is_one(self):
        blocks = BlockCollection([Block("k", frozenset({0}), frozenset({5}))], True)
        assert BlockingGraph(blocks).stats((0, 5)).mean_entropy == 1.0

    def test_degrees(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        assert graph.degrees == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_adjacency_lists_cover_all_edges(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        adjacency = graph.adjacency
        assert sum(len(v) for v in adjacency.values()) == 2 * graph.num_edges

    def test_counts(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        assert graph.num_nodes == 4
        assert len(graph) == graph.num_edges == 6
        assert (0, 2) in graph
        assert (9, 10) not in graph
