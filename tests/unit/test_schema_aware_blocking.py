"""Tests for loosely schema-aware blocking (key disambiguation, Figure 2)."""

import pytest

from repro.blocking import LooselySchemaAwareBlocking
from repro.blocking.schema_aware import make_key_entropy, split_key
from repro.schema.partition import AttributePartitioning


@pytest.fixture
def name_address_partitioning() -> AttributePartitioning:
    """Names of both sources in cluster 1, addresses in cluster 2, the
    rest in glue — the idealized partitioning of the paper's Figure 2."""
    return AttributePartitioning(
        clusters=[
            {(0, "Name"), (0, "FirstName"), (0, "SecondName"),
             (1, "name1"), (1, "name2"), (1, "full name")},
            {(0, "Addr."), (0, "mail"), (1, "Loc"), (1, "loc")},
        ],
        glue={(0, "profession"), (0, "year"), (0, "occupation"),
              (1, "birth year"), (1, "job"), (1, "work info"), (1, "b. date")},
    )


class TestDisambiguation:
    def test_abram_block_splits_by_cluster(
        self, figure1_clean_clean, name_address_partitioning
    ):
        blocks = LooselySchemaAwareBlocking(name_address_partitioning).build(
            figure1_clean_clean
        )
        by_key = {b.key: b for b in blocks}
        # Figure 2a: Abram_c1 = {p1, p3} (person names), Abram_c2 = {p2, p4}.
        assert by_key["abram#1"].profiles == {0, 2}
        assert by_key["abram#2"].profiles == {1, 3}

    def test_split_key_round_trip(self):
        assert split_key("abram#2") == ("abram", 2)
        assert split_key("token#with#11") == ("token#with", 11)

    def test_unknown_attribute_goes_to_glue(self, figure1_clean_clean):
        partitioning = AttributePartitioning(clusters=[], glue=[])
        blocks = LooselySchemaAwareBlocking(partitioning).build(figure1_clean_clean)
        # everything lands in glue cluster 0 => plain token blocking keys
        assert all(b.key.endswith("#0") for b in blocks)
        assert len(blocks) == 12

    def test_no_glue_drops_unclustered_tokens(self, figure1_clean_clean):
        partitioning = AttributePartitioning(
            clusters=[{(0, "Name"), (1, "name2")}], glue=None
        )
        blocks = LooselySchemaAwareBlocking(partitioning).build(figure1_clean_clean)
        assert {b.key for b in blocks} == {"abram#1"}


class TestDirty:
    def test_dirty_disambiguation(self, figure1_dirty):
        # Dirty mode: every attribute belongs to source 0.
        partitioning = AttributePartitioning(
            clusters=[
                {(0, "Name"), (0, "FirstName"), (0, "SecondName"),
                 (0, "name1"), (0, "name2"), (0, "full name")},
                {(0, "Addr."), (0, "mail"), (0, "Loc"), (0, "loc")},
            ],
            glue={(0, "profession"), (0, "year"), (0, "occupation"),
                  (0, "birth year"), (0, "job"), (0, "work info"),
                  (0, "b. date")},
        )
        blocks = LooselySchemaAwareBlocking(partitioning).build(figure1_dirty)
        by_key = {b.key: b for b in blocks}
        assert by_key["abram#1"].left == {0, 2}
        assert by_key["abram#2"].left == {1, 3}


class TestKeyEntropy:
    def test_maps_key_to_cluster_entropy(self, name_address_partitioning):
        partitioning = name_address_partitioning.with_entropies({1: 3.5, 2: 2.0})
        fn = make_key_entropy(partitioning)
        assert fn("abram#1") == 3.5
        assert fn("abram#2") == 2.0

    def test_unset_cluster_defaults_to_one(self, name_address_partitioning):
        fn = make_key_entropy(name_address_partitioning)
        assert fn("anything#1") == 1.0
