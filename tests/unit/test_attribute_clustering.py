"""Tests for the Attribute Clustering baseline, contrasted with LMI."""

from repro.schema.attribute_clustering import AttributeClustering
from repro.schema.attribute_profile import AttributeProfile
from repro.schema.lmi import LooseAttributeMatchInduction


def _profile(source: int, name: str, tokens: set[str]) -> AttributeProfile:
    return AttributeProfile(source, name, frozenset(tokens))


class TestAttributeClustering:
    def test_best_match_links(self):
        p1 = [_profile(0, "name", {"ann", "bob"})]
        p2 = [_profile(1, "fullname", {"ann", "bob", "carl"})]
        part = AttributeClustering().induce(p1, p2)
        assert part.cluster_of(0, "name") == part.cluster_of(1, "fullname") != 0

    def test_zero_similarity_stays_singleton(self):
        p1 = [_profile(0, "a", {"x"})]
        p2 = [_profile(1, "b", {"y"})]
        part = AttributeClustering().induce(p1, p2)
        assert part.cluster_of(0, "a") == 0

    def test_chains_through_best_matches(self):
        # a -- b similarity 0.5, b -- c similarity 0.5, a -- c zero.
        # AC links a->b and c->b, chaining all three into one cluster even
        # though a and c share nothing: the non-cohesive behaviour.
        a = _profile(0, "a", {"x1", "x2"})
        b = _profile(1, "b", {"x1", "x2", "y1", "y2"})
        c = _profile(0, "c", {"y1", "y2"})
        part = AttributeClustering().induce([a, c], [b])
        assert (
            part.cluster_of(0, "a")
            == part.cluster_of(1, "b")
            == part.cluster_of(0, "c")
            != 0
        )

    def test_lmi_is_more_cohesive_than_ac_on_chain(self):
        # Same topology as above: LMI with strict alpha only links mutual
        # nearly-best candidates; a and c tie as b's best (0.5 each), and b
        # is best for both, so LMI *also* merges here - unless alpha
        # requires strict dominance. Use asymmetric similarities instead:
        a = _profile(0, "a", {"x1", "x2", "x3"})
        b = _profile(1, "b", {"x1", "x2", "x3", "y1", "y2", "y3", "y4", "y5"})
        c = _profile(0, "c", {"y1", "y2", "y3", "y4", "y5"})
        # sim(a,b)=3/8, sim(c,b)=5/8; b's best is c; with alpha=0.9 a is not
        # a candidate of b, so LMI keeps a out...
        lmi = LooseAttributeMatchInduction(alpha=0.9).induce([a, c], [b])
        assert lmi.cluster_of(0, "a") == 0
        assert lmi.cluster_of(0, "c") == lmi.cluster_of(1, "b") != 0
        # ...while AC links a to its best match b regardless.
        ac = AttributeClustering().induce([a, c], [b])
        assert ac.cluster_of(0, "a") == ac.cluster_of(1, "b")

    def test_dirty_mode(self):
        profiles = [
            _profile(0, "first", {"ann", "bob"}),
            _profile(0, "nickname", {"ann", "bob"}),
            _profile(0, "year", {"1985"}),
        ]
        part = AttributeClustering().induce(profiles, None)
        assert part.cluster_of(0, "first") == part.cluster_of(0, "nickname") != 0

    def test_candidate_pairs_respected(self):
        a = _profile(0, "a", {"x"})
        b = _profile(1, "b", {"x"})
        c = _profile(1, "c", {"x"})
        part = AttributeClustering().induce(
            [a], [b, c], candidate_pairs=[((0, "a"), (1, "b"))]
        )
        assert part.cluster_of(0, "a") == part.cluster_of(1, "b") != 0
        assert part.cluster_of(1, "c") == 0

    def test_glue_disabled(self):
        p1 = [_profile(0, "a", {"x"})]
        p2 = [_profile(1, "b", {"y"})]
        part = AttributeClustering(glue_cluster=False).induce(p1, p2)
        assert part.cluster_of(0, "a") is None
