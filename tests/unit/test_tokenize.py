"""Tests for the value transformation functions (repro.utils.tokenize)."""

import pytest

from repro.utils.tokenize import normalize, qgrams, suffixes, token_set, tokenize


class TestNormalize:
    def test_lowercases(self):
        assert normalize("ABRAM") == "abram"

    def test_collapses_punctuation_to_spaces(self):
        assert normalize("Abram st. 30, NY") == "abram st 30 ny"

    def test_strips_edges(self):
        assert normalize("  hello  ") == "hello"

    def test_underscore_is_a_separator(self):
        assert normalize("main_street") == "main street"

    def test_empty_string(self):
        assert normalize("") == ""

    def test_only_punctuation(self):
        assert normalize("... --- !!!") == ""

    def test_unicode_casefold(self):
        assert normalize("STRASSE") == normalize("strasse")

    def test_nfkc_fullwidth_digits(self):
        # Full-width digits are visually identical to ASCII digits and
        # must land in the same block.
        assert normalize("３０") == "30"
        assert normalize("Abram ３０") == normalize("Abram 30")

    def test_nfkc_ligatures(self):
        assert normalize("ﬁle") == "file"
        assert normalize("oﬃce") == normalize("office")

    def test_nfkc_compatibility_forms(self):
        assert normalize("Ⅳ") == normalize("iv")  # Roman numeral sign
        assert normalize("ｅｌｌｅｎ") == "ellen"  # full-width letters

    def test_nfkc_runs_before_casefold(self):
        # The full-width capital A only reaches 'a' if NFKC maps it to
        # ASCII 'A' first and casefold then lowers it.
        assert normalize("Ａ１") == "a1"


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("Abram St. 30 NY") == ["abram", "st", "30", "ny"]

    def test_min_length_drops_short_tokens(self):
        assert tokenize("a b ab abc", min_length=2) == ["ab", "abc"]

    def test_min_length_one_keeps_everything(self):
        assert tokenize("a b", min_length=1) == ["a", "b"]

    def test_preserves_duplicates(self):
        # Entropy extraction counts frequencies, so duplicates must survive.
        assert tokenize("st st st") == ["st", "st", "st"]

    def test_empty_value(self):
        assert tokenize("") == []


class TestTokenSet:
    def test_union_over_values(self):
        assert token_set(["alpha beta", "beta gamma"]) == {"alpha", "beta", "gamma"}

    def test_empty_iterable(self):
        assert token_set([]) == set()


class TestQgrams:
    def test_sliding_window(self):
        assert qgrams("abcd", q=3) == ["abc", "bcd"]

    def test_short_value_yields_whole_string(self):
        assert qgrams("ny", q=3) == ["ny"]

    def test_normalizes_and_joins_tokens(self):
        # spaces removed before gramming: "ab cd" -> "abcd"
        assert qgrams("AB cd", q=4) == ["abcd"]

    def test_empty_value(self):
        assert qgrams("", q=3) == []

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError, match="q must be positive"):
            qgrams("abc", q=0)

    def test_negative_q_raises(self):
        with pytest.raises(ValueError, match="q must be positive"):
            qgrams("abc", q=-3)

    def test_q_one_yields_characters(self):
        assert qgrams("abc", q=1) == ["a", "b", "c"]

    def test_tokenize_applies_nfkc(self):
        # Regression: visually-identical tokens intern to one blocking key.
        assert tokenize("Abram ３０") == tokenize("abram 30")

    def test_exact_length_value(self):
        assert qgrams("abc", q=3) == ["abc"]


class TestSuffixes:
    def test_all_long_suffixes(self):
        assert list(suffixes("abram", min_length=4)) == ["abram", "bram"]

    def test_short_token_yields_itself(self):
        assert list(suffixes("ny", min_length=4)) == ["ny"]

    def test_multiple_tokens(self):
        out = list(suffixes("main st", min_length=3))
        assert "main" in out and "ain" in out

    def test_empty_value(self):
        assert list(suffixes("", min_length=4)) == []
