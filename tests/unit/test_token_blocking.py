"""Tests for Token Blocking against the paper's Figure 1 example."""

from repro.blocking import TokenBlocking

# Figure 1b: the 12 blocks Token Blocking derives from the four profiles.
FIGURE_1B_KEYS = {
    "ellen", "smith", "1985", "car", "ny", "main",
    "abram", "street", "jr", "85", "st", "retail",
}


class TestCleanClean:
    def test_reproduces_figure_1b_keys(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        assert {b.key for b in blocks} == FIGURE_1B_KEYS

    def test_abram_block_contains_all_profiles(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        abram = next(b for b in blocks if b.key == "abram")
        assert abram.profiles == {0, 1, 2, 3}

    def test_one_sided_tokens_produce_no_block(self, figure1_clean_clean):
        # "john" appears only in p1 (source 1), "may" only in p4 (source 2).
        blocks = TokenBlocking().build(figure1_clean_clean)
        keys = {b.key for b in blocks}
        assert "john" not in keys
        assert "may" not in keys

    def test_min_token_length_filters_keys(self, figure1_clean_clean):
        # "30" is two chars: present at length 2, absent at length 3.
        keys2 = {b.key for b in TokenBlocking(2).build(figure1_clean_clean)}
        keys3 = {b.key for b in TokenBlocking(3).build(figure1_clean_clean)}
        assert "ny" in keys2
        assert "ny" not in keys3
        assert "abram" in keys3


class TestDirty:
    def test_dirty_blocks_include_within_source_pairs(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        abram = next(b for b in blocks if b.key == "abram")
        # The figure's graph has all 6 edges; the dirty abram block alone
        # entails all of them.
        assert abram.num_comparisons == 6

    def test_same_keys_as_clean_clean(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        assert {b.key for b in blocks} == FIGURE_1B_KEYS

    def test_aggregate_cardinality_matches_hand_count(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        # 11 two-profile blocks (1 comparison each) + abram with 6.
        assert blocks.aggregate_cardinality == 17
