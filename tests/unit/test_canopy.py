"""Tests for Canopy Clustering blocking."""

import pytest

from repro.blocking.canopy import CanopyBlocking


class TestCanopyBlocking:
    def test_groups_similar_profiles(self, tiny_clean_clean):
        blocks = CanopyBlocking(loose_threshold=0.3, tight_threshold=0.8,
                                seed=1).build(tiny_clean_clean)
        pairs = blocks.distinct_pairs()
        # the exact-duplicate pair (alice carol, index 0 and 3) must co-occur
        assert (0, 3) in pairs

    def test_loose_threshold_controls_block_size(self, figure1_dirty):
        tight = CanopyBlocking(loose_threshold=0.6, tight_threshold=0.9,
                               seed=1).build(figure1_dirty)
        loose = CanopyBlocking(loose_threshold=0.05, tight_threshold=0.9,
                               seed=1).build(figure1_dirty)
        assert loose.aggregate_cardinality >= tight.aggregate_cardinality

    def test_clean_clean_blocks_split_sources(self, tiny_clean_clean):
        blocks = CanopyBlocking(loose_threshold=0.1, seed=1).build(tiny_clean_clean)
        offset = tiny_clean_clean.offset2
        for block in blocks:
            assert all(i < offset for i in block.left)
            assert all(j >= offset for j in (block.right or ()))

    def test_deterministic_given_seed(self, figure1_dirty):
        a = CanopyBlocking(seed=7).build(figure1_dirty)
        b = CanopyBlocking(seed=7).build(figure1_dirty)
        assert [blk.profiles for blk in a] == [blk.profiles for blk in b]

    def test_tight_threshold_one_keeps_all_seeds(self, figure1_dirty):
        # with tight=1.0 nothing is removed from the pool: every profile
        # seeds a canopy, so there are as many canopies as profiles that
        # yield a block with >= 2 members
        blocks = CanopyBlocking(loose_threshold=0.1, tight_threshold=1.0,
                                seed=1).build(figure1_dirty)
        assert len(blocks) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CanopyBlocking(loose_threshold=0.9, tight_threshold=0.5)
        with pytest.raises(ValueError):
            CanopyBlocking(loose_threshold=0.0)
