"""Tests for the incremental block index (repro.streaming.index)."""

import numpy as np
import pytest

from repro.data import EntityProfile
from repro.schema.partition import AttributePartitioning
from repro.streaming import IncrementalBlockIndex


def profile(pid: str, text: str) -> EntityProfile:
    return EntityProfile.from_dict(pid, {"name": text})


def index_state(index: IncrementalBlockIndex) -> dict:
    """A comparable snapshot of the index's observable state."""
    return {
        key: (
            frozenset(index.posting(key).left),
            frozenset(index.posting(key).right or ()),
        )
        for key in index.keys()
    }


class TestUpsert:
    def test_upsert_indexes_tokens(self):
        index = IncrementalBlockIndex()
        node = index.upsert(profile("a", "john abram"))
        assert index.num_profiles == 1
        assert index.keys_of(node) == frozenset({"john", "abram"})
        assert index.node_block_count(node) == 2
        assert index.total_block_assignments == 2

    def test_min_token_length_respected(self):
        index = IncrementalBlockIndex(min_token_length=5)
        node = index.upsert(profile("a", "john abram"))
        assert index.keys_of(node) == frozenset({"abram"})

    def test_upsert_same_profile_is_a_noop(self):
        index = IncrementalBlockIndex()
        node = index.upsert(profile("a", "john"))
        version = index.version
        assert index.upsert(profile("a", "john")) == node
        assert index.version == version

    def test_upsert_replaces_changed_keys(self):
        index = IncrementalBlockIndex()
        node = index.upsert(profile("a", "john abram"))
        index.upsert(profile("b", "john smith"))
        index.upsert(profile("a", "jon abram"))  # "john" -> "jon"
        assert index.keys_of(node) == frozenset({"jon", "abram"})
        assert frozenset(index.posting("john").left) == {
            index.node_of("b")
        }

    def test_tokenless_profile_is_live_but_unindexed(self):
        index = IncrementalBlockIndex(min_token_length=100)
        node = index.upsert(profile("a", "john"))
        assert index.num_profiles == 1
        assert index.keys_of(node) == frozenset()
        assert index.num_blocks == 0

    def test_dirty_index_rejects_source_one(self):
        index = IncrementalBlockIndex()
        with pytest.raises(ValueError, match="single source"):
            index.upsert(profile("a", "john"), source=1)

    def test_clean_clean_sides_are_separate(self):
        index = IncrementalBlockIndex(clean_clean=True)
        a = index.upsert(profile("a", "abram"), source=0)
        b = index.upsert(profile("b", "abram"), source=1)
        posting = index.posting("abram")
        assert posting.left == {a} and posting.right == {b}
        assert posting.num_comparisons == 1

    def test_same_id_distinct_per_source(self):
        index = IncrementalBlockIndex(clean_clean=True)
        a = index.upsert(profile("x", "abram"), source=0)
        b = index.upsert(profile("x", "smith"), source=1)
        assert a != b
        assert index.node_of("x", 0) == a
        assert index.node_of("x", 1) == b


class TestDelete:
    def test_delete_removes_memberships(self):
        index = IncrementalBlockIndex()
        index.upsert(profile("a", "john abram"))
        index.upsert(profile("b", "john smith"))
        assert index.delete("a")
        assert index.num_profiles == 1
        assert "abram" not in index
        assert frozenset(index.posting("john").left) == {index.node_of("b")}

    def test_delete_unknown_returns_false(self):
        index = IncrementalBlockIndex()
        version = index.version
        assert not index.delete("ghost")
        assert index.version == version

    def test_delete_twice_returns_false(self):
        index = IncrementalBlockIndex()
        index.upsert(profile("a", "john"))
        assert index.delete("a")
        assert not index.delete("a")

    def test_deleted_node_is_not_resolvable(self):
        index = IncrementalBlockIndex()
        index.upsert(profile("a", "john"))
        index.delete("a")
        with pytest.raises(KeyError):
            index.node_of("a")


class TestUpsertDeleteUpsertIdempotence:
    def test_state_identical_to_single_upsert(self):
        reference = IncrementalBlockIndex()
        reference.upsert(profile("a", "john abram"))
        reference.upsert(profile("b", "abram smith"))

        cycled = IncrementalBlockIndex()
        cycled.upsert(profile("a", "john abram"))
        cycled.upsert(profile("b", "abram smith"))
        cycled.delete("a")
        cycled.upsert(profile("a", "john abram"))

        assert index_state(cycled) == index_state(reference)
        assert cycled.num_profiles == reference.num_profiles
        assert cycled.total_block_assignments == reference.total_block_assignments

    def test_node_id_is_stable_across_the_cycle(self):
        index = IncrementalBlockIndex()
        node = index.upsert(profile("a", "john"))
        index.delete("a")
        assert index.upsert(profile("a", "john")) == node

    def test_cycle_with_changed_attributes_keeps_the_id(self):
        index = IncrementalBlockIndex()
        node = index.upsert(profile("a", "john"))
        index.delete("a")
        assert index.upsert(profile("a", "jon smith")) == node
        assert index.keys_of(node) == frozenset({"jon", "smith"})


class TestSchemaAwareKeys:
    def test_keys_are_cluster_disambiguated(self):
        partitioning = AttributePartitioning(
            clusters=[[(0, "name")]], glue=[], entropies={1: 1.5}
        )
        index = IncrementalBlockIndex(partitioning=partitioning)
        node = index.upsert(profile("a", "abram"))
        assert index.keys_of(node) == frozenset({"abram#1"})
        assert index.key_entropy("abram#1") == 1.5

    def test_entropy_cache_invalidated_on_partitioning_swap(self):
        partitioning = AttributePartitioning(
            clusters=[[(0, "name")]], glue=[], entropies={1: 1.5}
        )
        index = IncrementalBlockIndex(partitioning=partitioning)
        index.upsert(profile("a", "abram"))
        assert index.key_entropy("abram#1") == 1.5  # populates the cache
        index.partitioning = AttributePartitioning(
            clusters=[[(0, "name")]], glue=[], entropies={1: 2.5}
        )
        assert index.key_entropy("abram#1") == 2.5

    def test_unclustered_attribute_falls_into_glue(self):
        partitioning = AttributePartitioning(
            clusters=[[(0, "name")]], glue=[]
        )
        index = IncrementalBlockIndex(partitioning=partitioning)
        node = index.upsert(
            EntityProfile.from_dict("a", {"other": "abram"})
        )
        assert index.keys_of(node) == frozenset({"abram#0"})


class TestPostingArrays:
    def test_arrays_sorted_and_cached_until_mutation(self):
        index = IncrementalBlockIndex()
        index.upsert(profile("b", "abram"))
        index.upsert(profile("a", "abram"))
        posting = index.posting("abram")
        left, right = posting.arrays()
        assert right is None
        assert left.tolist() == sorted(posting.left)
        assert posting.arrays()[0] is left  # cached
        index.upsert(profile("c", "abram"))
        assert posting.arrays()[0] is not left  # invalidated
        assert np.all(np.diff(posting.arrays()[0]) > 0)

    def test_validation_of_ratios(self):
        with pytest.raises(ValueError, match="purging_ratio"):
            IncrementalBlockIndex(purging_ratio=0.0)
        with pytest.raises(ValueError, match="filtering_ratio"):
            IncrementalBlockIndex(filtering_ratio=1.5)
