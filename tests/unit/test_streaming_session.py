"""Tests for the streaming session facade, replay, and snapshots."""

import json

import pytest

from repro.core import Blast, BlastConfig
from repro.core.stages import Pipeline, SchemaExtraction
from repro.data import EntityProfile
from repro.datasets import load_clean_clean
from repro.streaming import (
    STREAMING_SESSION,
    StreamingSession,
    StreamingStage,
    iter_stream,
    parse_stream_record,
)


def profile(pid: str, text: str) -> EntityProfile:
    return EntityProfile.from_dict(pid, {"name": text})


class TestSessionBasics:
    # Tiny fixtures disable purging and use CBS — see the matching note in
    # test_streaming_metablocker.py.

    def test_upsert_query_delete(self):
        session = StreamingSession(
            BlastConfig(purging_ratio=1.0), weighting="cbs"
        )
        session.upsert(profile("a", "john abram"))
        session.upsert(profile("b", "john abram"))
        assert [c.profile_id for c in session.candidates("a")] == ["b"]
        assert session.delete("b")
        assert session.candidates("a") == []

    def test_default_k_from_config(self):
        session = StreamingSession(
            BlastConfig(stream_query_k=1, purging_ratio=1.0), weighting="cbs"
        )
        session.upsert(profile("a", "john abram"))
        session.upsert(profile("b", "john abram"))
        session.upsert(profile("c", "john abram"))
        assert len(session.candidates("a")) == 1
        assert len(session.candidates("a", k=2)) == 2

    def test_use_entropy_false_neutralizes_cluster_entropies(self):
        dataset = load_clean_clean("ar1", scale=0.05)
        session = StreamingSession.from_dataset(
            dataset, BlastConfig(use_entropy=False)
        )
        partitioning = session.index.partitioning
        assert partitioning is not None
        for cluster_id in partitioning.cluster_ids:
            assert partitioning.entropy_of(cluster_id) == 1.0

    def test_from_dataset_matches_batch_pipeline(self):
        dataset = load_clean_clean("ar1", scale=0.05)
        config = BlastConfig()
        batch_pairs = Blast(config).run(dataset).blocks.distinct_pairs()
        session = StreamingSession.from_dataset(dataset, config)
        pairs = set()
        for gidx, p in dataset.iter_profiles():
            source = dataset.source_of(gidx)
            for c in session.candidates(p.profile_id, source=source):
                if c.source == 0:
                    other = dataset.collection1.index_of(c.profile_id)
                else:
                    other = dataset.offset2 + dataset.collection2.index_of(
                        c.profile_id
                    )
                pairs.add((min(gidx, other), max(gidx, other)))
        assert pairs == batch_pairs


class TestReplay:
    def test_replay_bare_profiles_queries_on_arrival(self):
        session = StreamingSession(
            BlastConfig(purging_ratio=1.0), weighting="cbs"
        )
        events = list(
            session.replay([profile("a", "john abram"),
                            profile("b", "john abram")])
        )
        assert events[0].candidates == []
        assert [c.profile_id for c in events[1].candidates] == ["a"]

    def test_replay_handles_delete_records(self):
        session = StreamingSession()
        records = [
            parse_stream_record(
                {"id": "a", "attributes": [["name", "john abram"]]}
            ),
            parse_stream_record({"op": "delete", "id": "a"}),
            parse_stream_record({"op": "delete", "id": "ghost"}),
        ]
        events = list(session.replay(records))
        assert events[1].applied and events[1].candidates is None
        assert not events[2].applied
        assert session.index.num_profiles == 0

    def test_replay_without_query_only_builds(self):
        session = StreamingSession()
        events = list(
            session.replay([profile("a", "x abram"),
                            profile("b", "y abram")], query=False)
        )
        assert all(e.candidates is None for e in events)
        assert session.index.num_profiles == 2

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown stream op"):
            parse_stream_record({"op": "merge", "id": "a"})


class TestStreamFile:
    def test_iter_stream_parses_ops_and_sources(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            '{"id": "a", "attributes": [["n", "x"]]}\n'
            "\n"
            '{"id": "b", "source": 1, "attributes": [["n", "y"]]}\n'
            '{"op": "delete", "id": "a"}\n',
            encoding="utf-8",
        )
        records = list(iter_stream(path))
        assert [r.op for r in records] == ["upsert", "upsert", "delete"]
        assert records[1].source == 1
        assert records[2].profile is None

    def test_iter_stream_reports_bad_line(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"op": "upsert"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="s.jsonl:1"):
            list(iter_stream(path))


class TestSnapshot:
    def test_round_trip_preserves_results(self, tmp_path):
        dataset = load_clean_clean("prd", scale=0.05)
        session = StreamingSession.from_dataset(dataset)
        path = tmp_path / "snap.json.gz"
        session.snapshot(path)
        restored = StreamingSession.restore(path)
        assert restored.index.num_profiles == session.index.num_profiles
        for gidx, p in dataset.iter_profiles():
            source = dataset.source_of(gidx)
            assert restored.candidates(p.profile_id, source=source) == \
                session.candidates(p.profile_id, source=source)

    def test_snapshot_keeps_pruning_and_weighting(self, tmp_path):
        from repro.graph.pruning import CardinalityNodePruning

        session = StreamingSession(
            weighting="cbs",
            pruning=CardinalityNodePruning(reciprocal=True, k=3),
            consistency="fast",
        )
        session.upsert(profile("a", "john abram"))
        path = tmp_path / "snap.json"
        session.snapshot(path)
        restored = StreamingSession.restore(path)
        assert restored.metablocker.weighting.value == "cbs"
        assert restored.metablocker.consistency == "fast"
        pruning = restored.metablocker.pruning
        assert isinstance(pruning, CardinalityNodePruning)
        assert pruning.reciprocal and pruning.k == 3

    def test_restore_reconstructs_the_public_config(self, tmp_path):
        session = StreamingSession(
            BlastConfig(min_token_length=3, purging_ratio=0.9,
                        pruning_c=1.5, stream_query_k=4),
            weighting="cbs",
            consistency="fast",
        )
        session.upsert(profile("a", "john abram"))
        path = tmp_path / "snap.json"
        session.snapshot(path)
        config = StreamingSession.restore(path).config
        assert config is not None
        assert config.min_token_length == 3
        assert config.purging_ratio == 0.9
        assert config.pruning_c == 1.5
        assert config.stream_query_k == 4
        assert config.weighting.value == "cbs"
        assert config.stream_consistency == "fast"

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"format": 99}), encoding="utf-8")
        with pytest.raises(ValueError, match="format"):
            StreamingSession.restore(path)


class TestDictionaryRoundTrip:
    """The snapshot must round-trip the interned key dictionary."""

    def test_gzip_round_trip_preserves_key_ids_across_churn(self, tmp_path):
        session = StreamingSession()
        session.upsert(profile("a", "john abram"))
        session.upsert(profile("b", "ellen smith"))
        session.upsert(profile("c", "john smith"))
        # Churn: ids interned for "a"'s keys must survive its absence.
        session.delete("a")
        session.upsert(profile("a", "john abram"))

        path = tmp_path / "snap.json.gz"
        session.snapshot(path)
        restored = StreamingSession.restore(path)

        original = session.index.key_dictionary
        roundtripped = restored.index.key_dictionary
        assert roundtripped.to_payload() == original.to_payload()
        for key in original:
            assert roundtripped.id_of(key) == original.id_of(key)
        # Live postings are keyed by the same interned ids.
        assert set(restored.index.key_ids()) == set(session.index.key_ids())

    def test_dictionary_keeps_ids_of_fully_deleted_keys(self, tmp_path):
        session = StreamingSession()
        session.upsert(profile("a", "unique token"))
        before = {
            key: session.index.key_dictionary.id_of(key)
            for key in session.index.key_dictionary
        }
        session.delete("a")  # no live member keeps these keys alive
        path = tmp_path / "snap.json.gz"
        session.snapshot(path)
        restored = StreamingSession.restore(path)
        for key, kid in before.items():
            assert restored.index.key_dictionary.id_of(key) == kid
        # A re-upsert after restore revives the very same ids.
        restored.upsert(profile("a", "unique token"))
        assert restored.index.key_ids_of(
            restored.index.node_of("a")
        ) == frozenset(before.values())

    def test_snapshot_payload_carries_dictionary(self, tmp_path):
        import gzip

        session = StreamingSession()
        session.upsert(profile("a", "john abram"))
        path = tmp_path / "snap.json.gz"
        session.snapshot(path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            document = json.load(handle)
        payload = document["payload"]
        assert payload["dictionary"] == session.index.key_dictionary.to_payload()

    def test_restore_without_dictionary_field_still_works(self, tmp_path):
        # Pre-interning snapshots carry no dictionary; restore re-interns.
        import gzip

        session = StreamingSession()
        session.upsert(profile("a", "john abram"))
        session.upsert(profile("b", "john smith"))
        path = tmp_path / "snap.json.gz"
        session.snapshot(path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            document = json.load(handle)
        # Re-shape into a format-1 document: payload at top level, no
        # checksum envelope, no dictionary field.
        payload = document["payload"]
        del payload["dictionary"]
        payload["format"] = 1
        legacy_path = tmp_path / "legacy.json"
        legacy_path.write_text(json.dumps(payload), encoding="utf-8")
        restored = StreamingSession.restore(legacy_path)
        assert restored.candidates("a") == session.candidates("a")


class TestStreamingStage:
    def test_pipeline_equivalent_to_batch_blast(self):
        dataset = load_clean_clean("ar1", scale=0.05)
        config = BlastConfig()
        batch = Blast(config).run(dataset)
        result = Pipeline(
            [SchemaExtraction(config), StreamingStage(config)]
        ).run(dataset)
        assert result.blocks.distinct_pairs() == batch.blocks.distinct_pairs()
        assert [r.stage for r in result.stage_reports] == [
            "schema-extraction", "streaming-replay",
        ]

    def test_stage_leaves_session_artifact(self, figure1_dirty):
        from repro.core.stages import PipelineContext

        context = PipelineContext(figure1_dirty)
        StreamingStage().apply(context)
        session = context.artifacts[STREAMING_SESSION]
        assert session.index.num_profiles == 4
        assert context.blocks is not None

    def test_schema_agnostic_stage_works_without_partitioning(
        self, figure1_clean_clean
    ):
        result = Pipeline([StreamingStage()]).run(figure1_clean_clean)
        assert result.partitioning is None
        assert all(block.num_comparisons == 1 for block in result.blocks)

    def test_stream_query_k_does_not_truncate_stage_output(self):
        dataset = load_clean_clean("ar1", scale=0.05)
        uncapped = Pipeline([
            SchemaExtraction(BlastConfig()),
            StreamingStage(BlastConfig()),
        ]).run(dataset)
        capped_config = BlastConfig(stream_query_k=1)
        capped = Pipeline([
            SchemaExtraction(capped_config),
            StreamingStage(capped_config),
        ]).run(dataset)
        # stream_query_k caps serving queries, never the batch-equivalent
        # retained neighbourhoods the stage materializes.
        assert capped.blocks.distinct_pairs() == uncapped.blocks.distinct_pairs()


class TestSingleWriterContract:
    """Sessions are single-writer: interleaved writers must fail loudly
    (ConcurrentWriterError) instead of corrupting the index/journal."""

    def test_interleaved_writers_are_rejected(self, monkeypatch):
        import threading

        from repro.streaming import ConcurrentWriterError

        session = StreamingSession(
            BlastConfig(purging_ratio=1.0), weighting="cbs"
        )
        inside = threading.Event()
        release = threading.Event()
        real_upsert = session.index.upsert

        def slow_upsert(prof, source=0):
            inside.set()
            assert release.wait(timeout=10.0)
            return real_upsert(prof, source)

        monkeypatch.setattr(session.index, "upsert", slow_upsert)
        first = threading.Thread(
            target=session.upsert, args=(profile("a", "john abram"),)
        )
        first.start()
        try:
            assert inside.wait(timeout=10.0)  # writer A is mid-verb
            with pytest.raises(ConcurrentWriterError, match="single-writer"):
                session.upsert(profile("b", "john abram"))
            with pytest.raises(ConcurrentWriterError, match="single-writer"):
                session.delete("a")
            with pytest.raises(ConcurrentWriterError, match="single-writer"):
                session.snapshot("unused.json")
        finally:
            release.set()
            first.join(timeout=10.0)
        # Writer A completed; the session is intact and writable again.
        assert session.index.num_profiles == 1
        session.upsert(profile("b", "john abram"))
        assert [c.profile_id for c in session.candidates("a")] == ["b"]

    def test_sequential_verbs_do_not_trip_the_guard(self, tmp_path):
        session = StreamingSession(
            BlastConfig(purging_ratio=1.0), weighting="cbs"
        )
        session.upsert(profile("a", "john abram"))
        session.snapshot(tmp_path / "snap.json")
        session.delete("a")
        assert session.index.num_profiles == 0

    def test_restored_sessions_carry_the_guard(self, tmp_path):
        from repro.streaming import ConcurrentWriterError

        session = StreamingSession(
            BlastConfig(purging_ratio=1.0), weighting="cbs"
        )
        session.upsert(profile("a", "john abram"))
        session.snapshot(tmp_path / "snap.json")
        restored = StreamingSession.restore(tmp_path / "snap.json")
        with restored._exclusive("test"):
            with pytest.raises(ConcurrentWriterError):
                restored.upsert(profile("b", "john abram"))
        restored.upsert(profile("b", "john abram"))  # released again
