"""Tests for the MetaBlocker driver."""

from repro.blocking import TokenBlocking
from repro.graph import MetaBlocker, WeightingScheme, blocks_from_edges
from repro.graph.pruning import WeightNodePruning
from repro.metrics import evaluate_blocks


class TestBlocksFromEdges:
    def test_clean_clean_pair_blocks(self):
        bc = blocks_from_edges([(0, 5), (1, 6)], is_clean_clean=True)
        assert len(bc) == 2
        assert bc.aggregate_cardinality == 2
        assert bc[0].left == {0} and bc[0].right == {5}

    def test_dirty_pair_blocks(self):
        bc = blocks_from_edges([(1, 2)], is_clean_clean=False)
        assert bc[0].left == {1, 2}
        assert bc[0].num_comparisons == 1

    def test_empty(self):
        assert len(blocks_from_edges([], True)) == 0

    def test_deterministic_order(self):
        bc = blocks_from_edges([(3, 7), (0, 5)], True)
        assert [b.key for b in bc] == ["e:0-5", "e:3-7"]


class TestMetaBlocker:
    def test_output_is_redundancy_free(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        out = MetaBlocker().run(blocks)
        assert out.aggregate_cardinality == len(out)  # 1 comparison per block

    def test_improves_pq_without_losing_matches(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        before = evaluate_blocks(blocks, figure1_dirty)
        after = evaluate_blocks(MetaBlocker().run(blocks), figure1_dirty)
        assert after.pair_quality > before.pair_quality
        assert after.pair_completeness == before.pair_completeness

    def test_run_detailed_consistency(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        mb = MetaBlocker()
        out, graph, weights, retained = mb.run_detailed(blocks)
        assert len(out) == len(retained)
        assert set(weights) == {edge for edge, _ in graph.edges()}
        assert retained <= set(weights)
        assert {tuple(sorted(b.profiles)) for b in out} == retained

    def test_pluggable_weighting_and_pruning(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        mb = MetaBlocker(
            weighting=WeightingScheme.JS,
            pruning=WeightNodePruning(reciprocal=True),
        )
        out = mb.run(blocks)
        assert 0 < len(out) <= 6

    def test_key_entropy_changes_retention(self, figure1_dirty):
        """Figures 2-3: with name-blocks weighted 3.5 and others 2.0, the
        superfluous p2-p3 edge is pruned; without entropy it survives."""
        from repro.blocking import LooselySchemaAwareBlocking
        from repro.blocking.schema_aware import make_key_entropy
        from repro.schema.partition import AttributePartitioning

        partitioning = AttributePartitioning(
            clusters=[
                {(0, "Name"), (0, "FirstName"), (0, "SecondName"),
                 (0, "name1"), (0, "name2"), (0, "full name")},
            ],
            glue={(0, "profession"), (0, "year"), (0, "occupation"),
                  (0, "birth year"), (0, "job"), (0, "work info"),
                  (0, "b. date"), (0, "Addr."), (0, "mail"), (0, "Loc"),
                  (0, "loc")},
        ).with_entropies({1: 3.5, 0: 2.0})

        blocks = LooselySchemaAwareBlocking(partitioning).build(figure1_dirty)
        with_entropy = MetaBlocker(key_entropy=make_key_entropy(partitioning))
        out = with_entropy.run(blocks)
        retained = {tuple(sorted(b.profiles)) for b in out}
        assert (0, 2) in retained  # p1-p3 (true match)
        assert (1, 3) in retained  # p2-p4 (true match)
        assert (1, 2) not in retained  # p2-p3: the superfluous edge of Fig 3c
