"""Tests for the CSR entity index (repro.graph.entity_index)."""

import numpy as np
import pytest

from repro.blocking import TokenBlocking
from repro.blocking.base import Block, BlockCollection
from repro.graph.entity_index import _unrank_combinations


def _clean_collection() -> BlockCollection:
    return BlockCollection(
        [
            Block("a", frozenset({0, 1}), frozenset({5, 6})),
            Block("b", frozenset({1}), frozenset({6})),
            Block("empty", frozenset({2}), frozenset()),  # 0 comparisons
        ],
        True,
    )


def _dirty_collection() -> BlockCollection:
    return BlockCollection(
        [
            Block("x", frozenset({3, 1, 0})),
            Block("y", frozenset({2, 3})),
        ],
        False,
    )


class TestLayout:
    def test_clean_clean_csr_arrays(self):
        index = _clean_collection().entity_index
        assert index.num_blocks == 3
        assert index.keys == ("a", "b", "empty")
        assert index.block_ptr.tolist() == [0, 4, 6, 7]
        # Left members sorted, then right members sorted.
        assert index.entity_ids.tolist() == [0, 1, 5, 6, 1, 6, 2]
        assert index.block_split.tolist() == [2, 5, 7]
        assert index.block_comparisons.tolist() == [4, 1, 0]

    def test_dirty_split_equals_block_end(self):
        index = _dirty_collection().entity_index
        assert index.block_ptr.tolist() == [0, 3, 5]
        assert index.block_split.tolist() == [3, 5]
        assert index.entity_ids.tolist() == [0, 1, 3, 2, 3]
        assert index.block_comparisons.tolist() == [3, 1]

    def test_node_block_counts_match_profile_block_sets(self):
        for collection in (_clean_collection(), _dirty_collection()):
            index = collection.entity_index
            expected = {
                profile: len(positions)
                for profile, positions in collection.profile_block_sets.items()
            }
            for profile, count in expected.items():
                assert int(index.node_block_counts[profile]) == count
            assert index.num_indexed_profiles == len(expected)
            assert index.total_comparisons == collection.aggregate_cardinality

    def test_index_is_cached_on_the_collection(self):
        collection = _dirty_collection()
        assert collection.entity_index is collection.entity_index

    def test_empty_collection(self):
        index = BlockCollection([], False).entity_index
        assert index.num_blocks == 0
        src, dst, block = index.enumerate_pairs()
        assert src.size == dst.size == block.size == 0
        assert index.distinct_pair_arrays()[0].size == 0


class TestPairEnumeration:
    def test_matches_block_iter_pairs(self, figure1_dirty):
        collection = TokenBlocking().build(figure1_dirty)
        index = collection.entity_index
        src, dst, pair_block = index.enumerate_pairs()
        expected = [
            (pair, position)
            for position, block in enumerate(collection)
            for pair in sorted(block.iter_pairs())
        ]
        got = list(zip(zip(src.tolist(), dst.tolist()), pair_block.tolist()))
        assert sorted(got) == sorted(expected)

    def test_block_major_order_and_canonical_pairs(self):
        src, dst, pair_block = _clean_collection().entity_index.enumerate_pairs()
        assert pair_block.tolist() == sorted(pair_block.tolist())
        assert np.all(src < dst)

    def test_distinct_pair_arrays_sorted_unique(self):
        collection = _clean_collection()
        src, dst = collection.entity_index.distinct_pair_arrays()
        pairs = list(zip(src.tolist(), dst.tolist()))
        assert pairs == sorted(set(pairs))
        assert set(pairs) == collection.distinct_pairs()

    @pytest.mark.parametrize("n", [2, 3, 5, 17, 64])
    def test_unrank_combinations_bijective(self, n):
        total = n * (n - 1) // 2
        ns = np.full(total, n, dtype=np.int64)
        qs = np.arange(total, dtype=np.int64)
        row, col = _unrank_combinations(ns, qs)
        import itertools

        assert list(zip(row.tolist(), col.tolist())) == list(
            itertools.combinations(range(n), 2)
        )


class TestStreaming:
    def test_iter_distinct_pairs_streams_sorted(self):
        collection = _dirty_collection()
        iterator = collection.iter_distinct_pairs()
        assert next(iterator) == (0, 1)
        rest = list(iterator)
        assert rest == [(0, 3), (1, 3), (2, 3)]
        assert collection.count_distinct_pairs() == 4
