"""Tests for AttributePartitioning."""

import pytest

from repro.schema.partition import (
    GLUE_CLUSTER_ID,
    AttributePartitioning,
    single_glue_partitioning,
)


class TestConstruction:
    def test_cluster_ids_start_at_one(self):
        p = AttributePartitioning([{(0, "a"), (1, "b")}], glue=[(0, "c")])
        assert p.cluster_ids == [GLUE_CLUSTER_ID, 1]

    def test_rejects_overlapping_clusters(self):
        with pytest.raises(ValueError, match="two clusters"):
            AttributePartitioning([{(0, "a"), (1, "b")}, {(0, "a"), (1, "c")}])

    def test_rejects_glue_overlapping_clusters(self):
        with pytest.raises(ValueError, match="glue"):
            AttributePartitioning([{(0, "a"), (1, "b")}], glue=[(0, "a")])

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError, match="empty"):
            AttributePartitioning([set()])

    def test_num_clusters_counts_glue(self):
        p = AttributePartitioning([{(0, "a"), (1, "b")}], glue=[(0, "c")])
        assert p.num_clusters == 2
        q = AttributePartitioning([{(0, "a"), (1, "b")}], glue=None)
        assert q.num_clusters == 1


class TestClusterLookup:
    def test_assigned_attribute(self):
        p = AttributePartitioning([{(0, "a"), (1, "b")}], glue=[(0, "c")])
        assert p.cluster_of(0, "a") == 1
        assert p.cluster_of(1, "b") == 1
        assert p.cluster_of(0, "c") == GLUE_CLUSTER_ID

    def test_unknown_attribute_with_glue(self):
        p = AttributePartitioning([{(0, "a"), (1, "b")}], glue=[])
        assert p.cluster_of(9, "never seen") == GLUE_CLUSTER_ID

    def test_unknown_attribute_without_glue(self):
        p = AttributePartitioning([{(0, "a"), (1, "b")}], glue=None)
        assert p.cluster_of(9, "never seen") is None

    def test_source_disambiguates_same_name(self):
        p = AttributePartitioning(
            [{(0, "name"), (1, "title")}], glue=[(1, "name")]
        )
        assert p.cluster_of(0, "name") == 1
        assert p.cluster_of(1, "name") == GLUE_CLUSTER_ID


class TestEntropies:
    def test_default_entropy_is_neutral(self):
        p = AttributePartitioning([{(0, "a"), (1, "b")}])
        assert p.entropy_of(1) == 1.0

    def test_with_entropies_is_a_copy(self):
        p = AttributePartitioning([{(0, "a"), (1, "b")}], glue=[(0, "c")])
        q = p.with_entropies({1: 3.5, GLUE_CLUSTER_ID: 2.0})
        assert q.entropy_of(1) == 3.5
        assert q.entropy_of(GLUE_CLUSTER_ID) == 2.0
        assert p.entropy_of(1) == 1.0  # original untouched
        assert q.cluster_of(0, "a") == p.cluster_of(0, "a")

    def test_with_entropies_preserves_no_glue(self):
        p = AttributePartitioning([{(0, "a"), (1, "b")}], glue=None)
        q = p.with_entropies({1: 2.0})
        assert not q.has_glue


class TestSingleGlue:
    def test_everything_in_glue(self):
        p = single_glue_partitioning([(0, "x"), (1, "y")])
        assert p.cluster_of(0, "x") == GLUE_CLUSTER_ID
        assert p.cluster_of(1, "y") == GLUE_CLUSTER_ID
        assert p.num_clusters == 1
