"""Tests for set similarities and attribute profile construction."""

import pytest

from repro.data import EntityCollection, EntityProfile
from repro.schema.attribute_profile import build_attribute_profiles
from repro.schema.similarity import cosine, dice, jaccard


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(0.5)

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 0.0
        assert jaccard({"a"}, set()) == 0.0


class TestDiceCosine:
    def test_dice_bounds_and_overlap(self):
        assert dice({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)
        assert dice({"a"}, {"a"}) == 1.0

    def test_cosine_bounds_and_overlap(self):
        assert cosine({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)
        assert cosine({"a"}, {"a"}) == 1.0

    def test_all_measures_agree_on_extremes(self):
        for fn in (jaccard, dice, cosine):
            assert fn({"x"}, {"x"}) == 1.0
            assert fn({"x"}, {"y"}) == 0.0
            assert fn(set(), {"y"}) == 0.0

    def test_ordering_consistency(self):
        # dice >= jaccard always; cosine between them for same-size sets
        a, b = {"a", "b", "c"}, {"b", "c", "d"}
        assert dice(a, b) >= jaccard(a, b)


class TestBuildAttributeProfiles:
    def _collection(self) -> EntityCollection:
        return EntityCollection(
            [
                EntityProfile.from_dict("1", {"name": "John Abram", "year": "1985"}),
                EntityProfile.from_dict("2", {"name": "Ellen Smith", "note": "..."}),
            ],
            "c",
        )

    def test_token_sets_per_attribute(self):
        profiles = {p.name: p for p in build_attribute_profiles(self._collection(), 0)}
        assert profiles["name"].tokens == {"john", "abram", "ellen", "smith"}
        assert profiles["year"].tokens == {"1985"}

    def test_tokenless_attribute_still_emitted(self):
        # "note" has only punctuation: empty token set, but present.
        profiles = {p.name: p for p in build_attribute_profiles(self._collection(), 0)}
        assert profiles["note"].tokens == frozenset()

    def test_ref_carries_source(self):
        profiles = build_attribute_profiles(self._collection(), 1)
        assert all(p.ref[0] == 1 for p in profiles)

    def test_deterministic_order(self):
        names = [p.name for p in build_attribute_profiles(self._collection(), 0)]
        assert names == sorted(names)
