"""Tests for repro.utils.rng, repro.utils.timer, repro.utils.unionfind."""

import time

from repro.utils.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.utils.timer import Timer
from repro.utils.unionfind import UnionFind


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng(5).integers(0, 1000, 10).tolist() == \
            make_rng(5).integers(0, 1000, 10).tolist()

    def test_different_seeds_differ(self):
        assert make_rng(1).integers(0, 10**9) != make_rng(2).integers(0, 10**9)

    def test_none_uses_default_seed(self):
        assert make_rng(None).integers(0, 10**9) == \
            make_rng(DEFAULT_SEED).integers(0, 10**9)

    def test_derive_seed_is_deterministic(self):
        assert derive_seed(make_rng(9)) == derive_seed(make_rng(9))


class TestTimer:
    def test_measures_nonnegative_time(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first


class TestUnionFind:
    def test_singletons_initially(self):
        uf = UnionFind("abc")
        assert not uf.connected("a", "b")

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)

    def test_components(self):
        uf = UnionFind([1, 2, 3, 4])
        uf.union(1, 2)
        uf.union(3, 4)
        components = uf.components()
        assert {frozenset(c) for c in components} == {
            frozenset({1, 2}), frozenset({3, 4})
        }

    def test_find_registers_new_items(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert any("new" in c for c in uf.components())

    def test_self_union_is_noop(self):
        uf = UnionFind()
        uf.union("x", "x")
        assert len(uf.components()) == 1

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(1, 2)
        assert len(uf.components()) == 1
