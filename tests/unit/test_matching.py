"""Tests for the matching substrate."""

from repro.blocking import TokenBlocking
from repro.graph import blocks_from_edges
from repro.matching import JaccardMatcher, resolve_entities


class TestJaccardMatcher:
    def test_similarity_of_identical_profiles(self, figure1_clean_clean):
        matcher = JaccardMatcher()
        assert matcher.similarity(figure1_clean_clean, 0, 0) == 1.0

    def test_matching_pair_scores_higher_than_non_matching(
        self, figure1_clean_clean
    ):
        matcher = JaccardMatcher()
        match = matcher.similarity(figure1_clean_clean, 1, 3)  # p2-p4
        non_match = matcher.similarity(figure1_clean_clean, 0, 3)  # p1-p4
        assert match > non_match

    def test_execute_deduplicates_comparisons(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        result = JaccardMatcher(threshold=0.2).execute(blocks, figure1_clean_clean)
        assert result.comparisons_executed == len(blocks.distinct_pairs())
        assert result.comparisons_executed < blocks.aggregate_cardinality

    def test_precision_recall_against_truth(self, figure1_clean_clean):
        blocks = blocks_from_edges([(0, 2), (1, 3)], True)  # exactly the truth
        result = JaccardMatcher(threshold=0.0).execute(blocks, figure1_clean_clean)
        assert result.recall == 1.0
        assert result.precision == 1.0
        assert result.f1 == 1.0

    def test_high_threshold_finds_nothing(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        result = JaccardMatcher(threshold=0.99).execute(blocks, figure1_clean_clean)
        assert result.matches == frozenset()
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_token_cache_consistency(self, figure1_clean_clean):
        matcher = JaccardMatcher()
        first = matcher.similarity(figure1_clean_clean, 0, 2)
        second = matcher.similarity(figure1_clean_clean, 0, 2)
        assert first == second


class TestResolveEntities:
    def test_transitive_grouping(self):
        entities = resolve_entities([(0, 1), (1, 2)])
        assert {frozenset(e) for e in entities} == {frozenset({0, 1, 2})}

    def test_unmatched_profiles_are_singletons(self):
        entities = resolve_entities([(0, 1)], all_profiles=[0, 1, 2, 3])
        assert {frozenset(e) for e in entities} == {
            frozenset({0, 1}), frozenset({2}), frozenset({3})
        }

    def test_no_matches(self):
        entities = resolve_entities([], all_profiles=[5, 6])
        assert len(entities) == 2
