"""Tests for the six pruning schemes."""

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.graph import BlockingGraph
from repro.graph.pruning import (
    BlastPruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    WeightEdgePruning,
    WeightNodePruning,
)


def _star_graph() -> tuple[BlockingGraph, dict]:
    """Node 0 connected to 1..4; one strong edge, three weak ones."""
    blocks = [Block(f"k{i}", frozenset({0}), frozenset({10 + i})) for i in range(4)]
    blocks.append(Block("extra", frozenset({0}), frozenset({10})))
    blocks.append(Block("extra2", frozenset({0}), frozenset({10})))
    graph = BlockingGraph(BlockCollection(blocks, True))
    weights = {(0, 10): 3.0, (0, 11): 1.0, (0, 12): 1.0, (0, 13): 1.0}
    return graph, weights


class TestWEP:
    def test_mean_threshold(self):
        graph, weights = _star_graph()
        kept = WeightEdgePruning().prune(graph, weights)
        # mean = 1.5: only the 3.0 edge survives
        assert kept == {(0, 10)}

    def test_explicit_threshold(self):
        graph, weights = _star_graph()
        kept = WeightEdgePruning(threshold=0.5).prune(graph, weights)
        assert kept == set(weights)

    def test_empty_graph(self):
        graph, _ = _star_graph()
        assert WeightEdgePruning().prune(graph, {}) == set()


class TestCEP:
    def test_top_k(self):
        graph, weights = _star_graph()
        kept = CardinalityEdgePruning(k=1).prune(graph, weights)
        assert kept == {(0, 10)}

    def test_deterministic_tie_break(self):
        graph, weights = _star_graph()
        kept = CardinalityEdgePruning(k=2).prune(graph, weights)
        assert kept == {(0, 10), (0, 11)}  # smallest edge id among the 1.0s

    def test_default_k_is_half_block_assignments(self):
        graph, weights = _star_graph()
        kept = CardinalityEdgePruning().prune(graph, weights)
        # sum |B_i| = 12 -> K = 6 >= all 4 edges
        assert kept == set(weights)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CardinalityEdgePruning(k=0)


class TestWNP:
    def test_redefined_keeps_edge_clearing_either_threshold(self):
        graph, weights = _star_graph()
        kept = WeightNodePruning(reciprocal=False).prune(graph, weights)
        # every leaf's only edge trivially clears its own mean -> all kept
        assert kept == set(weights)

    def test_reciprocal_requires_both(self):
        graph, weights = _star_graph()
        kept = WeightNodePruning(reciprocal=True).prune(graph, weights)
        # node 0's mean is 1.5: the weak edges fail node 0's threshold
        assert kept == {(0, 10)}

    def test_reciprocal_subset_of_redefined(self):
        graph, weights = _star_graph()
        wnp1 = WeightNodePruning(reciprocal=False).prune(graph, weights)
        wnp2 = WeightNodePruning(reciprocal=True).prune(graph, weights)
        assert wnp2 <= wnp1


class TestCNP:
    def test_redefined_vs_reciprocal(self):
        graph, weights = _star_graph()
        cnp1 = CardinalityNodePruning(reciprocal=False, k=1).prune(graph, weights)
        cnp2 = CardinalityNodePruning(reciprocal=True, k=1).prune(graph, weights)
        # each leaf's top-1 is its own edge: redefined keeps all;
        # node 0's top-1 is only (0, 10): reciprocal keeps just that one.
        assert cnp1 == set(weights)
        assert cnp2 == {(0, 10)}
        assert cnp2 <= cnp1

    def test_default_k_positive(self):
        graph, weights = _star_graph()
        kept = CardinalityNodePruning().prune(graph, weights)
        assert kept  # never empties the graph

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CardinalityNodePruning(k=-1)


class TestBlastPruning:
    def test_keeps_edges_above_combined_max_fraction(self):
        graph, weights = _star_graph()
        kept = BlastPruning(c=2.0, d=2.0).prune(graph, weights)
        # theta_0 = 1.5; each leaf i: theta = w/2.
        # (0,10): threshold (1.5 + 1.5)/2 = 1.5 <= 3.0 -> kept
        # (0,11): threshold (1.5 + 0.5)/2 = 1.0 <= 1.0 -> kept
        assert kept == set(weights)

    def test_larger_c_retains_more(self):
        graph, weights = _star_graph()
        strict = BlastPruning(c=1.0).prune(graph, weights)
        lenient = BlastPruning(c=4.0).prune(graph, weights)
        assert strict <= lenient

    def test_local_max_edge_always_survives_with_defaults(self):
        graph, weights = _star_graph()
        kept = BlastPruning().prune(graph, weights)
        assert (0, 10) in kept  # the global/local max

    def test_insensitive_to_low_weight_edge_flooding(self):
        """The Figure 6 scenario: adding weak edges must not change the
        verdict on existing edges (unlike mean-based WNP)."""
        base_blocks = [
            Block("a", frozenset({0}), frozenset({10})),
            Block("b", frozenset({0}), frozenset({11})),
        ]
        weights_small = {(0, 10): 4.0, (0, 11): 2.0}
        graph_small = BlockingGraph(BlockCollection(base_blocks, True))
        kept_small = BlastPruning().prune(graph_small, weights_small)

        flooded_blocks = base_blocks + [
            Block(f"w{i}", frozenset({0}), frozenset({20 + i})) for i in range(5)
        ]
        weights_flooded = dict(weights_small)
        weights_flooded.update({(0, 20 + i): 0.1 for i in range(5)})
        graph_flooded = BlockingGraph(BlockCollection(flooded_blocks, True))
        kept_flooded = BlastPruning().prune(graph_flooded, weights_flooded)

        assert ((0, 11) in kept_small) == ((0, 11) in kept_flooded)

    def test_mean_based_wnp_is_sensitive_to_flooding(self):
        """Contrast: reciprocal WNP changes its verdict when weak edges
        flood the neighborhood — the exact flaw Section 3.3.2 describes."""
        base_blocks = [
            Block("a", frozenset({0}), frozenset({10})),
            Block("b", frozenset({0}), frozenset({11})),
        ]
        weights_small = {(0, 10): 4.0, (0, 11): 2.0}
        graph_small = BlockingGraph(BlockCollection(base_blocks, True))
        verdict_small = (0, 11) in WeightNodePruning(True).prune(
            graph_small, weights_small
        )

        flooded_blocks = base_blocks + [
            Block(f"w{i}", frozenset({0}), frozenset({20 + i})) for i in range(8)
        ]
        weights_flooded = dict(weights_small)
        weights_flooded.update({(0, 20 + i): 0.1 for i in range(8)})
        graph_flooded = BlockingGraph(BlockCollection(flooded_blocks, True))
        verdict_flooded = (0, 11) in WeightNodePruning(True).prune(
            graph_flooded, weights_flooded
        )

        assert verdict_small != verdict_flooded

    def test_validation(self):
        with pytest.raises(ValueError):
            BlastPruning(c=0)
        with pytest.raises(ValueError):
            BlastPruning(d=-1)
