"""Regression tests for hazards found (and fixed) by ``repro lint``.

Each test pins one of the determinism fixes: the hazard is demonstrated
on plain python objects (set iteration order really is insertion-
dependent; float sums really are order-dependent), then the fixed code
is asserted to be invariant under those very perturbations.  Finally the
fixed modules are linted so the hazards cannot silently return.
"""

from __future__ import annotations

import itertools
import math
from pathlib import Path

import pytest

from repro.blocking.base import Block
from repro.schema.entropy import aggregate_entropies
from repro.schema.partition import AttributePartitioning

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


# -- the hazards themselves (motivating demonstrations) ----------------------


def test_frozenset_iteration_depends_on_insertion_order() -> None:
    # 1 and 9 collide in a small hash table, so whichever is inserted
    # first wins the primary slot: equal sets, different iteration order.
    assert frozenset([1, 9]) == frozenset([9, 1])
    orders = {tuple(frozenset(p)) for p in itertools.permutations([1, 9])}
    assert len(orders) > 1


def test_float_sum_depends_on_order() -> None:
    values = [1e16, 1.0, -1e16]
    sums = {sum(p) for p in itertools.permutations(values)}
    assert len(sums) > 1  # left-to-right rounding differs per order
    fsums = {math.fsum(p) for p in itertools.permutations(values)}
    assert fsums == {1.0}  # fsum rounds once, order-independent


# -- Block.iter_pairs: lexicographic regardless of insertion history ---------


def test_iter_pairs_dirty_is_insertion_order_invariant() -> None:
    members = [1, 5, 9, 13]  # ints with small-table collisions
    expected = list(itertools.combinations(sorted(members), 2))
    for perm in itertools.permutations(members):
        block = Block(key="k", left=frozenset(perm))
        assert list(block.iter_pairs()) == expected


def test_iter_pairs_clean_clean_is_insertion_order_invariant() -> None:
    left, right = [1, 9], [17, 25]
    expected = [(i, j) for i in sorted(left) for j in sorted(right)]
    for lperm in itertools.permutations(left):
        for rperm in itertools.permutations(right):
            block = Block(
                key="k", left=frozenset(lperm), right=frozenset(rperm)
            )
            assert list(block.iter_pairs()) == expected


# -- aggregate_entropies: exactly rounded, order-independent -----------------


def test_aggregate_entropies_uses_exact_summation() -> None:
    refs = [(0, "a"), (0, "b"), (0, "c")]
    partitioning = AttributePartitioning([refs])
    entropies = {refs[0]: 1e16, refs[1]: 1.0, refs[2]: -1e16}
    # A left-to-right sum gives 0.0 or 1.0 depending on the frozenset's
    # iteration order (see the demonstration above); fsum is exact.
    assert aggregate_entropies(partitioning, entropies) == {1: 1.0 / 3}


def test_aggregate_entropies_missing_and_empty() -> None:
    refs = [(0, "a"), (0, "b")]
    partitioning = AttributePartitioning([refs])
    assert aggregate_entropies(partitioning, {refs[0]: 3.0}) == {1: 1.5}


# -- the lint gate keeps the fixes in place ----------------------------------

_FIXED_MODULES = [
    "blocking/base.py",
    "blocking/standard.py",
    "graph/vectorized.py",
    "schema/entropy.py",
    "supervised/metablocking.py",
    "streaming/views.py",
]


@pytest.mark.parametrize("relpath", _FIXED_MODULES)
def test_fixed_modules_stay_lint_clean(relpath: str) -> None:
    from repro.analysis import LintEngine

    findings = LintEngine().lint_file(SRC / relpath)
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"hazard reintroduced in {relpath}:\n{rendered}"


@pytest.mark.parametrize(
    ("snippet", "code"),
    [
        # The pre-fix spellings, verbatim in miniature: each must fire.
        ("def f(left: frozenset[int]):\n"
         "    for i in left:\n"
         "        yield i\n", "RL001"),
        ("import numpy as np\n"
         "def f(wanted: set[int]):\n"
         "    return np.fromiter(wanted, dtype=np.int32)\n", "RL001"),
        ("import numpy as np\n"
         "def f(n: int):\n"
         "    return np.arange(n)\n", "RL002"),
        ("def f(members: frozenset, entropies: dict) -> float:\n"
         "    return sum(entropies.get(r, 0.0) for r in members)\n", "RL005"),
    ],
)
def test_pre_fix_spellings_are_flagged(snippet: str, code: str) -> None:
    from repro.analysis import LintEngine

    findings = LintEngine().lint_source(snippet)
    assert code in {f.code for f in findings}
