"""Tests for block collection statistics."""

import pytest

from repro.blocking import TokenBlocking
from repro.blocking.base import Block, BlockCollection
from repro.graph import MetaBlocker
from repro.metrics import block_collection_stats


class TestBlockCollectionStats:
    def test_figure1_numbers(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        stats = block_collection_stats(blocks)
        assert stats.num_blocks == 12
        assert stats.num_profiles == 4
        assert stats.aggregate_cardinality == 17
        assert stats.distinct_comparisons == 6  # complete graph on 4 nodes
        assert stats.redundancy_ratio == pytest.approx(17 / 6)
        assert stats.max_block_size == 4  # the "abram" block
        assert stats.min_block_size == 2

    def test_metablocked_output_is_redundancy_free(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        out = MetaBlocker().run(blocks)
        stats = block_collection_stats(out)
        assert stats.redundancy_ratio == 1.0
        assert stats.aggregate_cardinality == stats.distinct_comparisons

    def test_median_even_and_odd(self):
        even = BlockCollection(
            [Block("a", frozenset({0, 1})), Block("b", frozenset({0, 1, 2, 3}))],
            False,
        )
        assert block_collection_stats(even).median_block_size == 3.0
        odd = BlockCollection(
            [Block("a", frozenset({0, 1})),
             Block("b", frozenset({0, 1, 2})),
             Block("c", frozenset({0, 1, 2, 3, 4}))],
            False,
        )
        assert block_collection_stats(odd).median_block_size == 3.0

    def test_empty_collection(self):
        stats = block_collection_stats(BlockCollection([], True))
        assert stats.num_blocks == 0
        assert stats.redundancy_ratio == 1.0

    def test_blocks_per_profile(self):
        blocks = BlockCollection(
            [Block("a", frozenset({0, 1})), Block("b", frozenset({0, 2}))],
            False,
        )
        stats = block_collection_stats(blocks)
        # profile 0 in 2 blocks, profiles 1 and 2 in 1 each
        assert stats.mean_blocks_per_profile == pytest.approx(4 / 3)

    def test_str_is_informative(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        text = str(block_collection_stats(blocks))
        assert "redundancy=" in text and "blocks=12" in text
