"""Tests for query-time meta-blocking (repro.streaming.metablocker)."""

import pytest

from repro.core import prepare_blocks
from repro.data import EntityProfile
from repro.graph import BlockingGraph, WeightingScheme
from repro.graph.pruning import (
    BlastPruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    WeightEdgePruning,
    WeightNodePruning,
)
from repro.graph.weights import compute_weights
from repro.streaming import IncrementalBlockIndex, StreamingMetaBlocker


def build_index(dataset):
    index = IncrementalBlockIndex(clean_clean=dataset.is_clean_clean)
    for gidx, profile in dataset.iter_profiles():
        index.upsert(profile, source=dataset.source_of(gidx))
    return index


def batch_retained(dataset, weighting, pruning):
    """Retained edges of the batch token pipeline, as gidx pairs."""
    blocks = prepare_blocks(dataset)
    graph = BlockingGraph(blocks)
    weights = compute_weights(graph, weighting)
    return pruning.prune(graph, weights)


def streamed_neighbourhoods(dataset, meta):
    """profile gidx -> retained partner gidx set, via per-node queries."""
    out = {}
    offset2 = dataset.offset2 if dataset.is_clean_clean else 0
    for gidx, profile in dataset.iter_profiles():
        partners = set()
        for c in meta.candidates(
            profile.profile_id, source=dataset.source_of(gidx)
        ):
            if c.source == 0:
                partners.add(dataset.collection1.index_of(c.profile_id))
            else:
                partners.add(
                    offset2 + dataset.collection2.index_of(c.profile_id)
                )
        out[gidx] = partners
    return out


class TestValidation:
    def test_ejs_rejected(self):
        with pytest.raises(ValueError, match="EJS"):
            StreamingMetaBlocker(IncrementalBlockIndex(), weighting="ejs")

    def test_callable_weighting_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            StreamingMetaBlocker(
                IncrementalBlockIndex(), weighting=lambda graph: {}
            )

    def test_edge_centric_pruning_rejected(self):
        for pruning in (WeightEdgePruning(), CardinalityEdgePruning()):
            with pytest.raises(ValueError, match="node-centric"):
                StreamingMetaBlocker(IncrementalBlockIndex(), pruning=pruning)

    def test_custom_pruning_subclass_rejected(self):
        class Custom(BlastPruning):
            pass

        with pytest.raises(ValueError, match="node-centric"):
            StreamingMetaBlocker(IncrementalBlockIndex(), pruning=Custom())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            StreamingMetaBlocker(IncrementalBlockIndex(), backend="gpu")

    def test_unknown_consistency_fails_on_first_query(self):
        index = IncrementalBlockIndex()
        index.upsert(EntityProfile.from_dict("a", {"n": "abram"}))
        meta = StreamingMetaBlocker(index, consistency="nope")
        with pytest.raises(ValueError, match="stream view"):
            meta.candidates("a")

    def test_querying_unknown_profile_raises(self):
        meta = StreamingMetaBlocker(IncrementalBlockIndex())
        with pytest.raises(KeyError):
            meta.candidates("ghost")

    def test_nonpositive_k_rejected(self):
        index = IncrementalBlockIndex()
        index.upsert(EntityProfile.from_dict("a", {"n": "abram"}))
        with pytest.raises(ValueError, match="k must be positive"):
            StreamingMetaBlocker(index).candidates("a", k=0)


class TestQueries:
    # Tiny fixtures disable purging (a 2-member block always covers more
    # than half of <= 3 profiles, faithfully to the batch semantics) and
    # use CBS (chi-squared is degenerate when every block is shared).

    def test_neighborhood_lists_cooccurring_profiles(self):
        index = IncrementalBlockIndex(purging_ratio=1.0)
        index.upsert(EntityProfile.from_dict("a", {"n": "john abram"}))
        index.upsert(EntityProfile.from_dict("b", {"n": "john smith"}))
        index.upsert(EntityProfile.from_dict("c", {"n": "ellen smith"}))
        meta = StreamingMetaBlocker(index)
        assert {c.profile_id for c in meta.neighborhood("a")} == {"b"}
        assert {c.profile_id for c in meta.neighborhood("b")} == {"a", "c"}

    def test_candidates_sorted_by_weight_then_id(self):
        index = IncrementalBlockIndex(purging_ratio=1.0)
        index.upsert(EntityProfile.from_dict("a", {"n": "john abram jr"}))
        index.upsert(EntityProfile.from_dict("b", {"n": "john abram"}))
        index.upsert(EntityProfile.from_dict("c", {"n": "john"}))
        meta = StreamingMetaBlocker(index, weighting="cbs")
        result = meta.candidates("a")
        assert [c.profile_id for c in result] == ["b", "c"]
        weights = [c.weight for c in result]
        assert weights == sorted(weights, reverse=True)

    def test_k_caps_after_pruning(self):
        index = IncrementalBlockIndex(purging_ratio=1.0)
        index.upsert(EntityProfile.from_dict("a", {"n": "john abram jr"}))
        index.upsert(EntityProfile.from_dict("b", {"n": "john abram"}))
        index.upsert(EntityProfile.from_dict("c", {"n": "john abram senior"}))
        meta = StreamingMetaBlocker(index, weighting="cbs")
        full = meta.candidates("a")
        assert meta.candidates("a", k=1) == full[:1]

    def test_delete_then_query_reflects_removal(self):
        index = IncrementalBlockIndex(purging_ratio=1.0)
        index.upsert(EntityProfile.from_dict("a", {"n": "john abram"}))
        index.upsert(EntityProfile.from_dict("b", {"n": "john abram"}))
        index.upsert(EntityProfile.from_dict("c", {"n": "john abram"}))
        meta = StreamingMetaBlocker(index, weighting="cbs")
        assert {c.profile_id for c in meta.candidates("a")} == {"b", "c"}
        index.delete("b")
        assert {c.profile_id for c in meta.candidates("a")} == {"c"}

    def test_empty_neighbourhood_returns_empty(self):
        index = IncrementalBlockIndex()
        index.upsert(EntityProfile.from_dict("a", {"n": "abram"}))
        index.upsert(EntityProfile.from_dict("b", {"n": "smith"}))
        meta = StreamingMetaBlocker(index)
        assert meta.candidates("a") == []
        assert meta.neighborhood("a") == []

    def test_fast_candidates_subset_of_neighborhood(self, figure1_dirty):
        index = build_index(figure1_dirty)
        meta = StreamingMetaBlocker(index, consistency="fast")
        for _, profile in figure1_dirty.iter_profiles():
            hood = {c.profile_id for c in meta.neighborhood(profile.profile_id)}
            kept = {c.profile_id for c in meta.candidates(profile.profile_id)}
            assert kept <= hood


class TestBatchEquivalence:
    """Exact-view queries reproduce the batch retained neighbourhoods."""

    @pytest.mark.parametrize("weighting", [
        WeightingScheme.CHI_H, WeightingScheme.CBS, WeightingScheme.JS,
        WeightingScheme.ECBS, WeightingScheme.ARCS,
    ])
    @pytest.mark.parametrize("pruning", [
        BlastPruning(),
        WeightNodePruning(reciprocal=False),
        WeightNodePruning(reciprocal=True),
        CardinalityNodePruning(reciprocal=False),
        CardinalityNodePruning(reciprocal=True),
    ], ids=["blast", "wnp1", "wnp2", "cnp1", "cnp2"])
    @pytest.mark.parametrize("backend", ["vectorized", "python"])
    def test_figure1_dirty(self, figure1_dirty, weighting, pruning, backend):
        retained = batch_retained(figure1_dirty, weighting, pruning)
        meta = StreamingMetaBlocker(
            build_index(figure1_dirty),
            weighting=weighting,
            pruning=pruning,
            consistency="exact",
            backend=backend,
        )
        neighbourhoods = streamed_neighbourhoods(figure1_dirty, meta)
        for gidx, partners in neighbourhoods.items():
            expected = {
                j if i == gidx else i
                for i, j in retained
                if gidx in (i, j)
            }
            assert partners == expected, (gidx, weighting, pruning)

    def test_figure1_clean_clean_blast(self, figure1_clean_clean):
        retained = batch_retained(
            figure1_clean_clean, WeightingScheme.CHI_H, BlastPruning()
        )
        meta = StreamingMetaBlocker(
            build_index(figure1_clean_clean), consistency="exact"
        )
        neighbourhoods = streamed_neighbourhoods(figure1_clean_clean, meta)
        pairs = {
            (min(g, o), max(g, o))
            for g, partners in neighbourhoods.items()
            for o in partners
        }
        assert pairs == retained
