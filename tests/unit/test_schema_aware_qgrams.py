"""Tests for the q-gram variant of loosely schema-aware blocking."""

import pytest

from repro.blocking import LooselySchemaAwareBlocking
from repro.schema.partition import AttributePartitioning, single_glue_partitioning


class TestQgramTransformation:
    def test_qgram_keys_carry_cluster_ids(self, figure1_clean_clean):
        partitioning = single_glue_partitioning([])
        blocker = LooselySchemaAwareBlocking(
            partitioning, transformation="qgram", q=3
        )
        blocks = blocker.build(figure1_clean_clean)
        keys = {b.key for b in blocks}
        assert "abr#0" in keys and "ram#0" in keys

    def test_qgrams_tolerate_typos_tokens_do_not(self):
        """'jonn'/'john' share no token but share the gram 'jo'."""
        from repro.data import EntityCollection, EntityProfile, ERDataset, GroundTruth

        ds = ERDataset(
            EntityCollection(
                [EntityProfile.from_dict("a", {"name": "jonn"})], "L"
            ),
            EntityCollection(
                [EntityProfile.from_dict("b", {"name": "john"})], "R"
            ),
            GroundTruth([("a", "b")]),
            "typo",
        )
        partitioning = single_glue_partitioning([])
        token_blocks = LooselySchemaAwareBlocking(partitioning).build(ds)
        qgram_blocks = LooselySchemaAwareBlocking(
            partitioning, transformation="qgram", q=2
        ).build(ds)
        assert token_blocks.aggregate_cardinality == 0
        assert qgram_blocks.aggregate_cardinality > 0

    def test_cluster_disambiguation_still_applies(self, figure1_clean_clean):
        partitioning = AttributePartitioning(
            clusters=[{(0, "Name"), (1, "name2")}], glue=None
        )
        blocks = LooselySchemaAwareBlocking(
            partitioning, transformation="qgram", q=3
        ).build(figure1_clean_clean)
        # only Name/name2 tokens survive, all with cluster 1
        assert blocks and all(b.key.endswith("#1") for b in blocks)

    def test_validation(self):
        partitioning = single_glue_partitioning([])
        with pytest.raises(ValueError, match="transformation"):
            LooselySchemaAwareBlocking(partitioning, transformation="chars")
        with pytest.raises(ValueError, match="q must"):
            LooselySchemaAwareBlocking(partitioning, transformation="qgram", q=1)
