"""The repo must pass its own static gates.

``repro lint src/repro`` exiting clean is a tier-1 invariant: any commit
that introduces an unordered-iteration, dtype, registry, picklability,
or float-accumulation hazard fails here before it ever reaches the
conformance matrix.  The mypy check is the same gate CI runs; it skips
(rather than fails) where mypy is not installed so the suite stays
runnable in minimal environments.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

import pytest

from _lint_helpers import SRC_ROOT

from repro.analysis import LintEngine


def test_source_tree_is_lint_clean() -> None:
    findings = LintEngine().lint_paths([SRC_ROOT])
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"repro-lint findings in src/repro:\n{rendered}"


def test_tests_analysis_itself_is_lint_clean() -> None:
    # The linter's own machinery (not the deliberately-bad fixtures)
    # honors the contracts it enforces.
    here = SRC_ROOT.parents[1] / "tests" / "analysis"
    targets = sorted(p for p in here.glob("*.py"))
    findings = LintEngine().lint_paths(targets)
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"repro-lint findings in tests/analysis:\n{rendered}"


def test_py_typed_marker_ships() -> None:
    assert (SRC_ROOT / "py.typed").is_file()


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed; CI runs the typing gate",
)
def test_mypy_clean_on_typed_surface() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", str(SRC_ROOT)],
        capture_output=True,
        text=True,
        cwd=SRC_ROOT.parents[1],
        check=False,
    )
    assert result.returncode == 0, f"mypy errors:\n{result.stdout}"
