"""Shared helpers for the repro-lint test suite."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Finding, LintEngine

FIXTURES = Path(__file__).parent / "fixtures"
SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint_fixture(name: str, **engine_kwargs) -> list[Finding]:
    """Lint one fixture file with the default rule set."""
    return LintEngine(**engine_kwargs).lint_file(FIXTURES / name)
