"""CLI behavior: exit codes, formats, and the ``repro lint`` subcommand."""

from __future__ import annotations

import json

import pytest

from _lint_helpers import FIXTURES, SRC_ROOT

from repro.analysis import cli


def test_exit_zero_when_clean(capsys: pytest.CaptureFixture[str]) -> None:
    assert cli.run([str(FIXTURES / "rl001_good.py")]) == 0
    assert "no contract violations found" in capsys.readouterr().out


def test_exit_one_on_findings(capsys: pytest.CaptureFixture[str]) -> None:
    assert cli.run([str(FIXTURES / "rl001_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out


def test_exit_two_on_missing_path(capsys: pytest.CaptureFixture[str]) -> None:
    assert cli.run([str(FIXTURES / "does_not_exist.py")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_json_format(capsys: pytest.CaptureFixture[str]) -> None:
    assert cli.run([str(FIXTURES / "rl005_bad.py"), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["by_code"] == {"RL005": 4}


def test_select_flag(capsys: pytest.CaptureFixture[str]) -> None:
    bad = str(FIXTURES / "rl001_bad.py")
    assert cli.run([bad, "--select", "RL002,RL005"]) == 0
    capsys.readouterr()
    assert cli.run([bad, "--select", "RL001"]) == 1


def test_ignore_flag() -> None:
    bad = str(FIXTURES / "rl002_bad.py")
    assert cli.run([bad, "--ignore", "RL002"]) == 0


def test_default_path_outside_repo_falls_back_to_cwd(
    tmp_path, monkeypatch: pytest.MonkeyPatch, capsys: pytest.CaptureFixture[str]
) -> None:
    # No src/ in cwd: the bare invocation lints '.' instead of exiting 2.
    (tmp_path / "mod.py").write_text(
        "def f(seen: set[int]) -> list[int]:\n    return list(seen)\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    assert cli.run([]) == 1
    assert "RL001" in capsys.readouterr().out


def test_default_path_prefers_src_when_present(
    tmp_path, monkeypatch: pytest.MonkeyPatch, capsys: pytest.CaptureFixture[str]
) -> None:
    src = tmp_path / "src"
    src.mkdir()
    (src / "clean.py").write_text("X = 1\n", encoding="utf-8")
    # A violation OUTSIDE src/ must not be picked up by the default.
    (tmp_path / "dirty.py").write_text(
        "def f(seen: set[int]) -> list[int]:\n    return list(seen)\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    assert cli.run([]) == 0
    assert "no contract violations found" in capsys.readouterr().out


def test_list_rules(capsys: pytest.CaptureFixture[str]) -> None:
    assert cli.run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
                 "RL007"):
        assert code in out


def test_module_entry_point_exists() -> None:
    # ``python -m repro.analysis`` must resolve; keep the import light.
    import repro.analysis.__main__  # noqa: F401


def test_repro_cli_exposes_lint_subcommand(
    capsys: pytest.CaptureFixture[str],
) -> None:
    from repro.cli import main

    code = main(["lint", str(FIXTURES / "rl001_good.py")])
    assert code == 0
    assert "no contract violations found" in capsys.readouterr().out

    code = main(["lint", str(FIXTURES / "rl001_bad.py")])
    assert code == 1


def test_repro_cli_lint_src_is_clean(capsys: pytest.CaptureFixture[str]) -> None:
    from repro.cli import main

    assert main(["lint", str(SRC_ROOT)]) == 0
