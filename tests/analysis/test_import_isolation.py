"""The analyzer must import and run with no third-party dependencies.

The CI ``lint-static`` job runs ``python -m repro.analysis src`` *before*
installing anything, so importing :mod:`repro.analysis` must not execute
numpy-importing code.  Because ``import repro.analysis`` first executes
``repro/__init__.py``, the package facade has to stay lazy (PEP 562) —
an eager ``from repro.core import ...`` there would drag numpy in.  Each
subprocess poisons numpy's ``sys.modules`` entry so any ``import numpy``
raises ``ImportError``, then exercises the real entry points.
"""

from __future__ import annotations

import os
import subprocess
import sys

from _lint_helpers import FIXTURES, SRC_ROOT

_POISON = "import sys; sys.modules['numpy'] = None\n"


def _run_without_numpy(code: str) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT.parent)
    return subprocess.run(
        [sys.executable, "-c", _POISON + code],
        capture_output=True,
        text=True,
        env=env,
    )


def test_repro_analysis_imports_without_numpy() -> None:
    result = _run_without_numpy("import repro.analysis\n")
    assert result.returncode == 0, result.stderr


def test_lint_cli_runs_without_numpy() -> None:
    result = _run_without_numpy(
        "from repro.analysis.cli import run\n"
        f"raise SystemExit(run([{str(FIXTURES / 'rl001_good.py')!r}]))\n"
    )
    assert result.returncode == 0, result.stderr
    assert "no contract violations found" in result.stdout


def test_python_dash_m_entry_point_runs_without_numpy() -> None:
    # ``python -m repro.analysis --list-rules`` via runpy, exactly the
    # module-execution path the CI job uses.
    result = _run_without_numpy(
        "import runpy\n"
        "sys.argv = ['repro.analysis', '--list-rules']\n"
        "runpy.run_module('repro.analysis', run_name='__main__')\n"
    )
    assert result.returncode == 0, result.stderr
    assert "RL001" in result.stdout


def test_lazy_facade_still_resolves_every_export() -> None:
    # The lazy __getattr__ must serve the full public surface (numpy is
    # available here — this guards the table, not the isolation).
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
    assert "Blast" in dir(repro)
    try:
        repro.not_an_export
    except AttributeError as exc:
        assert "not_an_export" in str(exc)
    else:  # pragma: no cover - defends the test itself
        raise AssertionError("expected AttributeError for unknown name")
