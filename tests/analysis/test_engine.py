"""Engine behavior: suppressions, parse errors, select/ignore, path walking."""

from __future__ import annotations

import textwrap

from _lint_helpers import FIXTURES, lint_fixture

from repro.analysis import Finding, LintEngine, lint_paths
from repro.analysis.engine import PARSE_ERROR_CODE


def _lint(source: str, **kwargs) -> list[Finding]:
    return LintEngine(**kwargs).lint_source(textwrap.dedent(source))


# -- suppression comments ----------------------------------------------------


def test_suppressed_fixture_only_wrong_code_survives() -> None:
    findings = lint_fixture("suppressed.py")
    assert [f.code for f in findings] == ["RL001"]
    assert "wrong_code" in (FIXTURES / "suppressed.py").read_text().splitlines()[
        findings[0].line - 2
    ]


def test_same_line_disable() -> None:
    assert not _lint(
        """
        def f(seen: set[int]) -> list[int]:
            return list(seen)  # repro-lint: disable=RL001
        """
    )


def test_disable_next_targets_the_following_line() -> None:
    assert not _lint(
        """
        def f(seen: set[int]) -> list[int]:
            # repro-lint: disable-next=RL001
            return list(seen)
        """
    )
    # ... and ONLY the following line: two lines below still fires.
    findings = _lint(
        """
        def f(seen: set[int]) -> list[int]:
            # repro-lint: disable-next=RL001

            return list(seen)
        """
    )
    assert [f.code for f in findings] == ["RL001"]


def test_multi_code_disable() -> None:
    source = """
        import numpy as np

        def f(seen: set[float]):
            return np.fromiter(seen)  # repro-lint: disable=RL001,RL002
        """
    assert not _lint(source)
    # Without the directive both rules fire on that line.
    undirected = source.replace("  # repro-lint: disable=RL001,RL002", "")
    assert {f.code for f in _lint(undirected)} == {"RL001", "RL002"}


def test_directive_inside_string_literal_does_not_suppress() -> None:
    # The directive text appears on the offending line, but as a STRING
    # token, not a COMMENT — the finding must survive.
    findings = _lint(
        """
        def f(seen: set[int]) -> tuple[list[int], str]:
            return list(seen), "# repro-lint: disable=RL001"
        """
    )
    assert [f.code for f in findings] == ["RL001"]


def test_disable_next_inside_string_literal_does_not_suppress() -> None:
    findings = _lint(
        """
        def f(seen: set[int]) -> list[int]:
            banner = "# repro-lint: disable-next=RL001"
            return list(seen)
        """
    )
    assert [f.code for f in findings] == ["RL001"]


def test_suppressing_the_wrong_code_does_not_silence() -> None:
    findings = _lint(
        """
        def f(seen: set[int]) -> list[int]:
            return list(seen)  # repro-lint: disable=RL005
        """
    )
    assert [f.code for f in findings] == ["RL001"]


# -- parse errors ------------------------------------------------------------


def test_unparseable_file_yields_rl000() -> None:
    findings = _lint("def broken(:\n")
    assert len(findings) == 1
    assert findings[0].code == PARSE_ERROR_CODE
    assert "could not parse" in findings[0].message


def test_rl000_survives_select() -> None:
    findings = _lint("def broken(:\n", select=["RL001"])
    assert [f.code for f in findings] == [PARSE_ERROR_CODE]


# -- select / ignore ---------------------------------------------------------


_MIXED = """
    import numpy as np

    def f(seen: set[float]):
        order = list(seen)
        total = sum(seen)
        raw = np.array(order)
        return order, total, raw
    """


def test_select_keeps_only_named_codes() -> None:
    assert {f.code for f in _lint(_MIXED)} == {"RL001", "RL002", "RL005"}
    assert {f.code for f in _lint(_MIXED, select=["RL005"])} == {"RL005"}


def test_ignore_drops_named_codes() -> None:
    codes = {f.code for f in _lint(_MIXED, ignore=["RL002", "RL005"])}
    assert codes == {"RL001"}


# -- findings and path walking ----------------------------------------------


def test_findings_are_sorted_and_render_canonically() -> None:
    findings = _lint(_MIXED)
    assert findings == sorted(findings)
    first = findings[0]
    assert first.render() == (
        f"{first.path}:{first.line}:{first.col}: {first.code} {first.message}"
    )


def test_lint_paths_walks_directories_and_deduplicates() -> None:
    once = lint_paths([FIXTURES])
    twice = lint_paths([FIXTURES, FIXTURES / "rl001_bad.py"])
    assert once == twice
    assert {f.code for f in once} >= {"RL001", "RL002", "RL003", "RL004",
                                      "RL005", "RL006", "RL007"}
    paths = [f.path for f in once]
    assert paths == sorted(paths)
