"""Reporter output: the JSON schema contract and the text tally."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import LintEngine, render_json, render_text
from repro.analysis.reporting import JSON_SCHEMA_VERSION
from repro.analysis.rules import default_rules

_SOURCE = textwrap.dedent(
    """
    def f(seen: set[int], weights: set[float]):
        return list(seen), sum(weights)
    """
)


def _findings():
    return LintEngine().lint_source(_SOURCE, path="demo.py")


def test_json_schema_shape() -> None:
    report = json.loads(render_json(_findings(), default_rules()))
    assert set(report) == {"schema_version", "findings", "summary", "rules"}
    assert report["schema_version"] == JSON_SCHEMA_VERSION

    assert len(report["findings"]) == 2
    for entry in report["findings"]:
        assert set(entry) == {"path", "line", "col", "code", "message"}
        assert entry["path"] == "demo.py"
        assert isinstance(entry["line"], int) and entry["line"] >= 1
        assert isinstance(entry["col"], int) and entry["col"] >= 0

    assert report["summary"]["total"] == 2
    assert report["summary"]["by_code"] == {"RL001": 1, "RL005": 1}

    codes = [rule["code"] for rule in report["rules"]]
    assert codes == ["RL001", "RL002", "RL003", "RL004", "RL005",
                     "RL006", "RL007", "RL008"]
    for rule in report["rules"]:
        assert set(rule) == {"code", "name", "rationale"}


def test_json_is_deterministic() -> None:
    a = render_json(_findings(), default_rules())
    b = render_json(_findings(), default_rules())
    assert a == b


def test_json_empty_run() -> None:
    report = json.loads(render_json([], default_rules()))
    assert report["findings"] == []
    assert report["summary"] == {"total": 0, "by_code": {}}


def test_text_report_lists_findings_and_tally() -> None:
    text = render_text(_findings())
    lines = text.splitlines()
    assert lines[0].startswith("demo.py:")
    assert "RL001" in text and "RL005" in text
    assert lines[-1] == "found 2 contract violations"


def test_text_report_clean() -> None:
    assert "no contract violations" in render_text([])
