"""Fixture-driven rule tests: each rule fires on its bad snippet file and
stays silent on the matching good file.

The bad fixtures carry ``# RLxxx`` markers on (most) offending lines, so
a failure message can point at the exact construct that stopped firing.
"""

from __future__ import annotations

import pytest

from _lint_helpers import FIXTURES, lint_fixture

#: rule code -> (bad fixture, expected finding count, good fixture)
CASES = {
    "RL001": ("rl001_bad.py", 9, "rl001_good.py"),
    "RL002": ("rl002_bad.py", 8, "rl002_good.py"),
    "RL003": ("rl003_bad.py", 5, "rl003_good.py"),
    "RL004": ("rl004_bad.py", 5, "rl004_good.py"),
    "RL005": ("rl005_bad.py", 4, "rl005_good.py"),
    "RL006": ("rl006_bad.py", 8, "rl006_good.py"),
    "RL007": ("rl007_bad.py", 7, "rl007_good.py"),
    "RL008": ("rl008_bad.py", 5, "rl008_good.py"),
}


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_fires_on_bad_fixture(code: str) -> None:
    bad, expected_count, _ = CASES[code]
    findings = lint_fixture(bad)
    assert findings, f"{code} produced no findings on {bad}"
    codes = {f.code for f in findings}
    assert codes == {code}, f"unexpected codes {codes - {code}} in {bad}"
    rendered = "\n".join(f.render() for f in findings)
    assert len(findings) == expected_count, (
        f"expected {expected_count} {code} findings in {bad}, "
        f"got {len(findings)}:\n{rendered}"
    )


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_silent_on_good_fixture(code: str) -> None:
    _, _, good = CASES[code]
    findings = lint_fixture(good)
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"false positives in {good}:\n{rendered}"


def test_bad_fixture_marker_lines_are_flagged() -> None:
    """Every ``# RLxxx`` marker comment sits on a line the rule flagged."""
    for code, (bad, _, _) in CASES.items():
        source = (FIXTURES / bad).read_text(encoding="utf-8")
        marked = {
            lineno
            for lineno, line in enumerate(source.splitlines(), start=1)
            if f"# {code}" in line
        }
        flagged = {f.line for f in lint_fixture(bad)}
        missing = marked - flagged
        assert not missing, f"{bad}: marker lines {sorted(missing)} not flagged"


def test_rl001_reports_name_the_sink() -> None:
    sinks = {f.message for f in lint_fixture("rl001_bad.py")}
    assert any("list()" in m for m in sinks)
    assert any("joined string" in m for m in sinks)
    assert any("yielded stream" in m for m in sinks)
    assert any("array" in m for m in sinks)


def test_rl003_flags_call_form_registration() -> None:
    findings = lint_fixture("rl003_bad.py")
    assert any("backend_missing_keywords" in f.message for f in findings)
    assert any("weighting" in f.message for f in findings)


def test_rl004_distinguishes_payload_kinds() -> None:
    messages = "\n".join(f.message for f in lint_fixture("rl004_bad.py"))
    assert "lambda" in messages
    assert "'worker'" in messages
    assert "'Worker'" in messages
    assert "initializer=" in messages


def test_rl007_names_the_blocking_call() -> None:
    messages = "\n".join(f.message for f in lint_fixture("rl007_bad.py"))
    assert "time.sleep()" in messages
    assert "open()" in messages
    assert "os.replace()" in messages
    assert "snooze() (= time.sleep)" in messages
    assert ".join()" in messages
    assert "subprocess.run()" in messages
