"""RL007 fixtures that must stay SILENT: non-blocking async idioms."""

import asyncio
import os
import time


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:  # sync context: fine
        return handle.read()


async def backoff(attempt: int) -> None:
    await asyncio.sleep(2**attempt)  # awaited: the fix, not the bug


async def load_config(path: str) -> str:
    return await asyncio.to_thread(_read, path)


async def rotate(src: str, dst: str) -> None:
    # os.replace is passed by reference, not called on the loop.
    await asyncio.to_thread(os.replace, src, dst)


async def drain(queue: asyncio.Queue) -> None:
    await queue.join()  # coroutine join, awaited


async def stamp() -> float:
    return time.monotonic()  # non-blocking time call


async def render(parts: list) -> str:
    return ", ".join(parts)  # string join takes arguments


def sync_sleep() -> None:
    time.sleep(0.01)  # blocking is fine outside async defs


async def spawn_helper() -> None:
    def helper() -> None:
        time.sleep(0.01)  # nested sync def runs where it is *called*

    await asyncio.to_thread(helper)
