"""RL004 fixtures that must stay SILENT: module-level picklable payloads."""

import multiprocessing


def _worker(x: int) -> int:
    return x + 1


def _init_state(seed: int) -> None:
    del seed


def run(items: list[int]) -> list[int]:
    with multiprocessing.Pool(2, initializer=_init_state, initargs=(7,)) as pool:
        return pool.map(_worker, items)


def run_imap(items: list[int]) -> list[int]:
    with multiprocessing.Pool(2) as pool:
        return list(pool.imap(_worker, items, chunksize=16))


def plain_map(items: list[int]) -> list[int]:
    # builtin map with a lambda is fine: nothing crosses a process boundary.
    return list(map(lambda x: x + 1, items))


async def run_async(items: list[int]) -> list[int]:
    # module-level payloads dispatched from async code are picklable.
    with multiprocessing.Pool(2) as pool:
        return pool.map(_worker, items)
