"""RL006 fixtures that MUST fire: bare excepts and swallowed broad catches."""

import builtins


def bare_except(task) -> None:
    try:
        task()
    except:  # RL006: bare except catches BaseException
        print("failed")


def bare_except_reraise(task) -> None:
    try:
        task()
    except:  # RL006: still bare — KeyboardInterrupt reaches the cleanup
        task.cleanup()
        raise


def swallow_exception(task) -> None:
    try:
        task()
    except Exception:  # RL006: broad catch, pass-only body
        pass


def swallow_exception_as(task) -> None:
    try:
        task()
    except Exception as exc:  # RL006: naming the exception changes nothing
        ...


def swallow_base_exception(task) -> None:
    try:
        task()
    except BaseException:  # RL006: broadest possible catch, discarded
        pass


def swallow_qualified(task) -> None:
    try:
        task()
    except builtins.Exception:  # RL006: qualified broad catch, discarded
        pass


def swallow_in_tuple(task) -> None:
    try:
        task()
    except (ValueError, Exception):  # RL006: the tuple contains Exception
        pass


def swallow_in_loop(tasks) -> None:
    for task in tasks:
        try:
            task()
        except Exception:  # RL006: continue is as silent as pass
            continue
