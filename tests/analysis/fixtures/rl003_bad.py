"""RL003 fixtures that MUST fire: registered callables violating protocols."""

from repro.core.registry import (
    BACKENDS,
    register_blocker,
    register_pruning,
    register_weighting,
)


@register_blocker("no-args")
def blocker_without_config():  # RL003: must accept a BlastConfig
    return None


@register_blocker("too-many")
def blocker_with_extras(config, corpus):  # RL003: extra required parameter
    return None


@register_weighting("kw-only")
def weighting_with_required_kwonly(graph, *, alpha):  # RL003: required kw-only
    return None


@register_pruning("lambda-ish")
def pruning_with_two(graph, threshold):  # RL003: extra required parameter
    return None


def backend_missing_keywords(config):
    return None


BACKENDS.register("bad-backend", backend_missing_keywords)  # RL003: no kw
