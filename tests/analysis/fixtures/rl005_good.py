"""RL005 fixtures that must stay SILENT: order-independent accumulation."""

import math


def fsummed(weights: set[float]) -> float:
    return math.fsum(weights)  # fsum is exactly rounded: order-free


def fsummed_genexp(scores: frozenset[float]) -> float:
    return math.fsum(s * 0.5 for s in scores)


def sorted_sum(weights: set[float]) -> float:
    return sum(sorted(weights))  # explicit order pin


def int_count(ids: set[int]) -> int:
    return sum(len(str(i)) for i in ids)  # integral: addition is associative


def bool_count(flags: set[str], wanted: set[str]) -> int:
    return sum(f in wanted for f in flags)  # integral (bools)


def list_sum(weights: list[float]) -> float:
    return sum(weights)  # ordered input: reproducible as-is
