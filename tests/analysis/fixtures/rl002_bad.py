"""RL002 fixtures that MUST fire: unpinned / platform-width numpy dtypes."""

import numpy as np


def inferred_array(rows: list[int]):
    return np.array(rows)  # RL002: integer dtype inferred as C long


def inferred_asarray(rows: list[int]):
    return np.asarray(rows)  # RL002


def inferred_fromiter(rows: list[int]):
    return np.fromiter(rows, count=len(rows))  # RL002


def inferred_arange(n: int):
    return np.arange(n)  # RL002: arange defaults to C long


def builtin_int_dtype(rows: list[int]):
    return np.array(rows, dtype=int)  # RL002: platform-width int


def platform_astype(arr):
    return arr.astype(int)  # RL002: platform-width int


def np_intp_alias(rows: list[int]):
    return np.array(rows, dtype=np.int_)  # RL002: np.int_ is the C long


def string_int_dtype(n: int):
    return np.zeros(n, dtype="int")  # RL002: string spelling of the C long
