"""RL008 fixtures that MUST fire: leakable handles without a release."""

import numpy as np
from multiprocessing import shared_memory
from numpy.lib.format import open_memmap


def leaky_segment(nbytes: int) -> memoryview:
    segment = shared_memory.SharedMemory(create=True, size=nbytes)  # RL008: no finally release
    return segment.buf  # the view escapes; the segment name leaks


def close_outside_finally(name: str) -> bytes:
    segment = shared_memory.SharedMemory(name=name)  # RL008: close() not exception-safe
    payload = bytes(segment.buf)
    segment.close()  # skipped entirely if the copy above raises
    return payload


def dropped_handle() -> None:
    shared_memory.SharedMemory(create=True, size=64)  # RL008: bare-expression creation


def leaky_memmap(path: str) -> int:
    scratch = np.memmap(path, dtype=np.uint8, mode="w+", shape=(8,))  # RL008: never flushed or closed
    scratch[0] = 1
    return int(scratch[0])


def unflushed_output(path: str, total: int) -> None:
    out = open_memmap(path, mode="w+", dtype=np.int64, shape=(total,))  # RL008: flush() not in finally
    out[:] = 0
    out.flush()  # skipped if the fill raises
