"""Suppression fixtures: every finding here is silenced by a directive."""


def same_line(seen: set[int]) -> list[int]:
    return list(seen)  # repro-lint: disable=RL001


def next_line(names: frozenset[str]) -> str:
    # repro-lint: disable-next=RL001
    return ",".join(names)


def multi_code(weights: set[float]):
    import numpy as np

    # repro-lint: disable-next=RL001,RL002
    return np.fromiter(weights)


def wrong_code_does_not_silence(seen: set[int]) -> list[int]:
    return list(seen)  # repro-lint: disable=RL005
