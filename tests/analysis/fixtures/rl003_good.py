"""RL003 fixtures that must stay SILENT: protocol-conforming registrations."""

from repro.core.registry import (
    BACKENDS,
    register_blocker,
    register_pruning,
    register_weighting,
)


@register_blocker("plain")
def blocker(config):
    return None


@register_blocker("defaulted")
def blocker_with_defaults(config, *, expand=False):
    return None


@register_weighting("plain")
def weighting(graph):
    return None


@register_pruning("plain")
def pruning(graph, *, threshold=0.5):
    return None


def backend(corpus, *, weighting, pruning, entropy_boost, key_entropy):
    return None


def backend_kwargs(corpus, **kwargs):
    return None


BACKENDS.register("good-backend", backend)
BACKENDS.register("kwargs-backend", backend_kwargs)
