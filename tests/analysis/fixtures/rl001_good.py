"""RL001 fixtures that must stay SILENT: sorted or order-free consumption."""


def listed(seen: set[int]) -> list[int]:
    return sorted(seen)  # sorted() pins the order


def counted(tokens: set[str]) -> int:
    return len(tokens)  # order-free


def membership(keys: set[str], key: str) -> bool:
    return key in keys  # order-free


def reduced(ids: set[int]) -> int:
    return max(ids) - min(ids)  # order-free


def re_set(ids: set[int]) -> frozenset[int]:
    return frozenset(i * 2 for i in ids)  # unordered sink


def mutation_only(old: set[int], new: set[int], postings: dict[int, int]) -> None:
    for kid in old - new:  # loop body only mutates a dict: order-free
        postings.pop(kid, None)
    for kid in new - old:
        postings[kid] = postings.get(kid, 0) + 1


def dict_iteration(counts: dict[str, int]) -> list[str]:
    return [k for k in counts]  # dicts preserve insertion order


def sorted_loop(keys: frozenset[str]) -> list[str]:
    out: list[str] = []
    for key in sorted(keys):  # explicit sort before the ordered sink
        out.append(key)
    return out


def int_sum(ids: set[int]) -> int:
    return sum(len(str(i)) for i in ids)  # integral sum: order-free
