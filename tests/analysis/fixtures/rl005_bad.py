"""RL005 fixtures that MUST fire: float accumulation over unordered input."""


def summed(weights: set[float]) -> float:
    return sum(weights)  # RL005: float sum over a set


def summed_genexp(scores: frozenset[float]) -> float:
    return sum(s * 0.5 for s in scores)  # RL005: float genexp over a set


def summed_members(partitioning) -> float:
    return sum(e.weight for e in partitioning.members(0))  # RL005


def summed_local() -> float:
    pending = {0.25, 0.5}
    return sum(pending)  # RL005: local set variable
