"""RL006 fixtures that must stay SILENT: handled, logged, narrow, re-raised."""

import warnings


def narrow_quarantine(record: dict) -> dict | None:
    # Quarantining a *specific* anticipated failure is the on_error="skip"
    # pattern and stays legal.
    try:
        return {"id": record["id"]}
    except KeyError:
        return None


def narrow_pass(text: str) -> float:
    result = 0.0
    try:
        result = float(text)
    except ValueError:
        pass
    return result


def broad_but_logged(task) -> None:
    try:
        task()
    except Exception as exc:
        warnings.warn(f"task failed: {exc!r}", RuntimeWarning, stacklevel=2)


def broad_but_reraised(task, pool) -> None:
    try:
        task()
    except Exception:
        pool.terminate()
        raise


def broad_but_recorded(task, errors: list) -> None:
    try:
        task()
    except Exception as exc:
        errors.append(exc)


def narrow_tuple(record: dict) -> dict | None:
    try:
        return {"id": str(record["id"])}
    except (KeyError, TypeError, ValueError):
        return None
