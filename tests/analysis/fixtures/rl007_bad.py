"""RL007 fixtures that MUST fire: blocking calls inside coroutines."""

import os
import shutil
import subprocess
import time
from time import sleep as snooze


async def poll_for_file(path: str) -> bool:
    while not os.path.exists(path):
        time.sleep(0.1)  # RL007: stalls the whole event loop
    return True


async def load_config(path: str) -> str:
    with open(path, encoding="utf-8") as handle:  # RL007: sync file IO
        return handle.read()


async def rotate(src: str, dst: str) -> None:
    os.replace(src, dst)  # RL007: blocking atomic rename
    snooze(1.0)  # RL007: aliased time.sleep


async def wait_for_workers(pool) -> None:
    pool.join()  # RL007: zero-argument process/thread join


async def shell_out(cmd: list) -> int:
    return subprocess.run(cmd).returncode  # RL007: blocking subprocess


async def archive(tree: str) -> None:
    shutil.rmtree(tree)  # RL007: blocking filesystem walk
