"""RL008 fixtures that must stay SILENT: released or ownership-moved."""

from contextlib import closing

import numpy as np
from multiprocessing import shared_memory
from numpy.lib.format import open_memmap


def finally_released(nbytes: int) -> bytes:
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        return bytes(segment.buf)
    finally:
        segment.close()
        segment.unlink()


def context_managed(name: str) -> bytes:
    with closing(shared_memory.SharedMemory(name=name)) as segment:
        return bytes(segment.buf)


def named_then_context(name: str) -> int:
    segment = shared_memory.SharedMemory(name=name)
    with closing(segment):
        return segment.size


def ownership_returned(nbytes: int) -> shared_memory.SharedMemory:
    return shared_memory.SharedMemory(create=True, size=nbytes)


def ownership_to_container(segments: list, nbytes: int) -> None:
    # The container's owner releases these; creation-in-call is the
    # register-before-fallible-work idiom, not a leak.
    segments.append(shared_memory.SharedMemory(create=True, size=nbytes))


class SegmentOwner:
    """Attribute-managed handle: released by the instance's close()."""

    def __init__(self, nbytes: int) -> None:
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)

    def close(self) -> None:
        self._shm.close()
        self._shm.unlink()


def flushed_in_finally(path: str, total: int) -> None:
    out = open_memmap(path, mode="w+", dtype=np.int64, shape=(total,))
    try:
        out[:] = 0
    finally:
        out.flush()


def memmap_returned(path: str) -> np.memmap:
    scratch = np.memmap(path, dtype=np.uint8, mode="r", shape=(8,))
    return scratch
