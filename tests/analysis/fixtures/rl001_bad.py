"""RL001 fixtures that MUST fire: set order flowing into ordered outputs."""


def listed(seen: set[int]) -> list[int]:
    return list(seen)  # RL001: list() over a set


def comprehended() -> list[int]:
    tokens = {1, 2, 3}
    return [t * 2 for t in tokens]  # RL001: list comprehension over a set


def joined(names: frozenset[str]) -> str:
    return ",".join(names)  # RL001: join over a set


def joined_genexp(names: set[str]) -> str:
    return ",".join(n.upper() for n in names)  # RL001: join over a genexp


def yielded(partitioning):
    yield from partitioning.members(0)  # RL001: known set-returning method


def appended(keys: set[str]) -> list[str]:
    out: list[str] = []
    for key in keys:  # RL001: loop body appends to a list
        out.append(key)
    return out


def array_of(ids: set[int]):
    import numpy as np

    return np.fromiter(ids, dtype=np.int64)  # RL001: array from a set


def union_listed(a: set[int], b):
    return list(a | b)  # RL001: set-operator result into list()


class Holder:
    members: frozenset[int] = frozenset()

    def dump(self) -> list[int]:
        return list(self.members)  # RL001: annotated self attribute
