"""RL004 fixtures that MUST fire: unpicklable multiprocessing payloads."""

import multiprocessing


def run_lambda(items: list[int]) -> list[int]:
    with multiprocessing.Pool(2) as pool:
        return pool.map(lambda x: x + 1, items)  # RL004: lambda payload


def run_nested(items: list[int]) -> list[int]:
    def worker(x: int) -> int:  # local def: unpicklable under spawn
        return x + 1

    with multiprocessing.Pool(2) as pool:
        return pool.map(worker, items)  # RL004: nested function payload


def run_local_class(items: list[int]):
    class Worker:  # local class: unpicklable under spawn
        def __call__(self, x: int) -> int:
            return x + 1

    with multiprocessing.Pool(2) as pool:
        return pool.map(Worker(), items)  # RL004: local-class payload


def run_lambda_initializer() -> None:
    pool = multiprocessing.Pool(2, initializer=lambda: None)  # RL004
    pool.close()


async def run_nested_async(items: list[int]) -> list[int]:
    def worker(x: int) -> int:  # local def inside async: still unpicklable
        return x + 1

    with multiprocessing.Pool(2) as pool:
        return pool.map(worker, items)  # RL004: nested def in async function
