"""RL002 fixtures that must stay SILENT: pinned, fixed-width dtypes."""

import numpy as np


def pinned_array(rows: list[int]):
    return np.array(rows, dtype=np.int32)


def pinned_arange(n: int):
    return np.arange(n, dtype=np.int64)


def pinned_fromiter(rows: list[int]):
    return np.fromiter(rows, dtype=np.int32, count=len(rows))


def pinned_astype(arr):
    return arr.astype(np.int64, copy=False)


def float_dtype(rows: list[float]):
    # builtin float is always IEEE float64; platform-stable.
    return np.asarray(rows, dtype=float)


def default_zeros(n: int):
    # zeros/empty/full default to float64 on every platform.
    return np.zeros(n)


def bool_dtype(n: int):
    return np.zeros(n, dtype=bool)
