"""Shared machinery of the differential conformance suite (test helper).

The suite treats the pure-python ``python`` backend as the oracle and
checks every other registered backend against it across the full
(blocker x weighting x pruning) matrix, on one small synthetic
clean-clean task and one dirty task.  Block collections and oracle edge
sets are cached per combination so the matrix stays fast: each test case
runs exactly one non-oracle backend call plus two cached lookups.
"""

from __future__ import annotations

from functools import lru_cache

from repro.blocking.schema_aware import make_key_entropy
from repro.core import BlastConfig
from repro.core.registry import BACKENDS, BLOCKERS, PRUNERS, WEIGHTINGS
from repro.core.stages import (
    BlockFilteringStage,
    BlockPurgingStage,
    Pipeline,
    PipelineContext,
    SchemaExtraction,
)
from repro.datasets import load_clean_clean, load_dirty

#: The oracle backend every other backend must match edge-for-edge.
ORACLE = "python"

#: Per-backend extra options used throughout the matrix.  The parallel
#: backend runs its shards sequentially in-process (workers=1) with a
#: tiny shard cap, so every case still exercises multi-shard planning and
#: merging without paying process startup 800 times; dedicated tests in
#: test_matrix.py cover the real worker pool.
BACKEND_OPTIONS: dict[str, dict] = {
    "parallel": {"workers": 1, "shard_size": 13},
}

#: The two synthetic tasks of the matrix (name -> loader thunk).
DATASETS = {
    "clean-clean": lambda: load_clean_clean("ar1", scale=0.05, seed=11),
    "dirty": lambda: load_dirty("cora", scale=0.05, seed=11),
}

_CONFIG = BlastConfig(seed=7)


@lru_cache(maxsize=None)
def dataset_of(name: str):
    return DATASETS[name]()


@lru_cache(maxsize=None)
def prepared_blocks(dataset_name: str, blocker: str):
    """(blocks, key_entropy) after blocker -> purging -> filtering."""
    dataset = dataset_of(dataset_name)
    blocking_stage = BLOCKERS.get(blocker)(_CONFIG)
    stages = []
    if getattr(blocking_stage, "needs_partitioning", False):
        stages.append(SchemaExtraction(_CONFIG))
    stages.extend(
        [blocking_stage, BlockPurgingStage(), BlockFilteringStage()]
    )
    context = PipelineContext(dataset)
    Pipeline(stages).execute(context)
    key_entropy = (
        make_key_entropy(context.partitioning)
        if context.partitioning is not None
        else None
    )
    return context.blocks, key_entropy


@lru_cache(maxsize=None)
def oracle_edges(dataset_name: str, blocker: str, weighting: str, pruning: str):
    """The reference backend's retained edges, sorted (cached)."""
    blocks, key_entropy = prepared_blocks(dataset_name, blocker)
    return run_backend(
        ORACLE, blocks, key_entropy, weighting=weighting, pruning=pruning
    )


def run_backend(backend: str, blocks, key_entropy, *, weighting: str,
                pruning: str, **extra):
    """One backend invocation from registry names, with per-backend options."""
    options = dict(BACKEND_OPTIONS.get(backend, {}))
    options.update(extra)
    return BACKENDS.get(backend)(
        blocks,
        weighting=WEIGHTINGS.get(weighting),
        pruning=PRUNERS.get(pruning)(_CONFIG),
        key_entropy=key_entropy,
        **options,
    )


def matrix_params():
    """Every (dataset, blocker, weighting, pruning, backend) combination.

    Built from the live registries, so a newly registered component joins
    the conformance matrix automatically.
    """
    return [
        (dataset, blocker, weighting, pruning, backend)
        for dataset in DATASETS
        for blocker in BLOCKERS.names()
        for weighting in WEIGHTINGS.names()
        for pruning in PRUNERS.names()
        for backend in BACKENDS.names()
        if backend != ORACLE
    ]
