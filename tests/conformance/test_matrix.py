"""Differential conformance: every backend vs the python oracle.

One parametrized matrix over every registered (blocker x weighting x
pruning x backend) combination, on a small synthetic clean-clean task and
a dirty task, asserting the retained edge sets are identical to the
``python`` reference backend — the single place backend equivalence is
enforced (superseding per-backend spot checks).  Components registered by
plugins join the matrix automatically because the parameters are read
from the live registries.
"""

from __future__ import annotations

import pytest

import _matrix
from _matrix import (
    BACKEND_OPTIONS,
    ORACLE,
    matrix_params,
    oracle_edges,
    prepared_blocks,
    run_backend,
)
from repro.core.registry import BACKENDS


def _case_id(param: tuple) -> str:
    return "-".join(str(part) for part in param)


@pytest.mark.parametrize(
    "dataset_name,blocker,weighting,pruning,backend",
    matrix_params(),
    ids=[_case_id(param) for param in matrix_params()],
)
def test_backend_matches_oracle(
    dataset_name, blocker, weighting, pruning, backend
):
    blocks, key_entropy = prepared_blocks(dataset_name, blocker)
    expected = oracle_edges(dataset_name, blocker, weighting, pruning)
    actual = run_backend(
        backend, blocks, key_entropy, weighting=weighting, pruning=pruning
    )
    assert actual == expected


class TestMatrixShape:
    def test_matrix_covers_every_registered_backend(self):
        backends = {param[4] for param in matrix_params()}
        assert backends == set(BACKENDS.names()) - {ORACLE}

    def test_oracle_is_registered(self):
        assert ORACLE in BACKENDS


class TestParallelWorkerPool:
    """The matrix runs the parallel backend in-process; these spot-check
    the real multi-process pool on one combination per task shape."""

    @pytest.mark.parametrize("dataset_name", sorted(_matrix.DATASETS))
    def test_pool_matches_oracle(self, dataset_name):
        blocks, key_entropy = prepared_blocks(dataset_name, "token")
        expected = oracle_edges(dataset_name, "token", "chi_h", "blast")
        actual = run_backend(
            "parallel",
            blocks,
            key_entropy,
            weighting="chi_h",
            pruning="blast",
            workers=2,
            shard_size=None,
        )
        assert actual == expected

    def test_matrix_options_pin_the_chunked_mode(self):
        # The matrix must exercise multi-shard merging without a pool.
        assert BACKEND_OPTIONS["parallel"]["workers"] == 1
        assert BACKEND_OPTIONS["parallel"]["shard_size"] is not None
