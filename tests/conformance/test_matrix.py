"""Differential conformance: every backend vs the python oracle.

One parametrized matrix over every registered (blocker x weighting x
pruning x backend) combination, on a small synthetic clean-clean task and
a dirty task, asserting the retained edge sets are identical to the
``python`` reference backend — the single place backend equivalence is
enforced (superseding per-backend spot checks).  Components registered by
plugins join the matrix automatically because the parameters are read
from the live registries.
"""

from __future__ import annotations

import pytest

import _matrix
from _matrix import (
    BACKEND_OPTIONS,
    ORACLE,
    matrix_params,
    oracle_edges,
    prepared_blocks,
    run_backend,
)
from repro.core.registry import BACKENDS, PRUNERS, WEIGHTINGS


def _case_id(param: tuple) -> str:
    return "-".join(str(part) for part in param)


@pytest.mark.parametrize(
    "dataset_name,blocker,weighting,pruning,backend",
    matrix_params(),
    ids=[_case_id(param) for param in matrix_params()],
)
def test_backend_matches_oracle(
    dataset_name, blocker, weighting, pruning, backend
):
    blocks, key_entropy = prepared_blocks(dataset_name, blocker)
    expected = oracle_edges(dataset_name, blocker, weighting, pruning)
    actual = run_backend(
        backend, blocks, key_entropy, weighting=weighting, pruning=pruning
    )
    assert actual == expected


class TestMatrixShape:
    def test_matrix_covers_every_registered_backend(self):
        backends = {param[4] for param in matrix_params()}
        assert backends == set(BACKENDS.names()) - {ORACLE}

    def test_oracle_is_registered(self):
        assert ORACLE in BACKENDS


class TestParallelWorkerPool:
    """The matrix runs the parallel backend in-process; these spot-check
    the real multi-process pool on one combination per task shape."""

    @pytest.mark.parametrize("dataset_name", sorted(_matrix.DATASETS))
    def test_pool_matches_oracle(self, dataset_name):
        blocks, key_entropy = prepared_blocks(dataset_name, "token")
        expected = oracle_edges(dataset_name, "token", "chi_h", "blast")
        actual = run_backend(
            "parallel",
            blocks,
            key_entropy,
            weighting="chi_h",
            pruning="blast",
            workers=2,
            shard_size=None,
        )
        assert actual == expected

    def test_matrix_options_pin_the_chunked_mode(self):
        # The matrix must exercise multi-shard merging without a pool.
        assert BACKEND_OPTIONS["parallel"]["workers"] == 1
        assert BACKEND_OPTIONS["parallel"]["shard_size"] is not None


class TestPersistentPool:
    """``pool="persistent"`` must be indistinguishable from per-run mode
    — same edges as the oracle, with the pool reused across cases."""

    @pytest.fixture(autouse=True)
    def _teardown_pool(self):
        yield
        from repro.graph.pool import live_segments, shutdown_pool

        shutdown_pool()
        assert live_segments() == frozenset()

    @pytest.mark.parametrize("dataset_name", sorted(_matrix.DATASETS))
    def test_persistent_pool_matches_oracle(self, dataset_name):
        blocks, key_entropy = prepared_blocks(dataset_name, "token")
        expected = oracle_edges(dataset_name, "token", "chi_h", "blast")
        for _ in range(2):  # second run reuses pool and cached arrays
            actual = run_backend(
                "parallel",
                blocks,
                key_entropy,
                weighting="chi_h",
                pruning="blast",
                workers=2,
                shard_size=None,
                pool="persistent",
            )
            assert actual == expected


class TestSpillMode:
    """Out-of-core execution: a one-byte-scale threshold forces every
    shard and merge through disk; results must not move by a single
    edge, and the spill parent directory must be empty afterwards."""

    @pytest.mark.parametrize("dataset_name", sorted(_matrix.DATASETS))
    @pytest.mark.parametrize("weighting", sorted(WEIGHTINGS.names()))
    def test_spilled_run_matches_oracle(self, dataset_name, weighting, tmp_path):
        blocks, key_entropy = prepared_blocks(dataset_name, "token")
        expected = oracle_edges(dataset_name, "token", weighting, "blast")
        actual = run_backend(
            "parallel",
            blocks,
            key_entropy,
            weighting=weighting,
            pruning="blast",
            spill_dir=str(tmp_path),
            spill_threshold_mb=1e-6,
        )
        assert actual == expected
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("pruning", sorted(PRUNERS.names()))
    def test_spilled_prunings_match_oracle(self, pruning, tmp_path):
        blocks, key_entropy = prepared_blocks("dirty", "token")
        expected = oracle_edges("dirty", "token", "chi_h", pruning)
        actual = run_backend(
            "parallel",
            blocks,
            key_entropy,
            weighting="chi_h",
            pruning=pruning,
            spill_dir=str(tmp_path),
            spill_threshold_mb=1e-6,
        )
        assert actual == expected
        assert list(tmp_path.iterdir()) == []
