"""Benchmark bit-rot guard: the bench scripts stay importable and runnable.

The ``benchmarks/`` scripts are not collected by pytest (they are either
standalone scripts or pytest-benchmark suites run on demand), so an API
change could silently break them until the next bench session.  This
module imports every one of them, and drives the two standalone scripts
(``bench_scaling``, ``bench_streaming``) plus the shared ``harness``
helpers end-to-end at tiny scale.  The committed experiment-engine
configs under ``benchmarks/configs/`` (and the examples walkthrough) get
the same treatment: each one is loaded and executed with a smoke cap.
"""

from __future__ import annotations

import importlib
import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments import load_config, run_experiment

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_MODULES = sorted(path.stem for path in BENCH_DIR.glob("bench_*.py"))

#: Every committed experiment config must stay loadable and runnable at
#: tiny scale — the declarative analogue of the script import guard.
CONFIG_PATHS = sorted((BENCH_DIR / "configs").glob("*.toml")) + [
    REPO_ROOT / "examples" / "experiment_config.toml"
]

_HAS_TOML = (
    importlib.util.find_spec("tomllib") is not None
    or importlib.util.find_spec("tomli") is not None
)


@pytest.fixture(autouse=True)
def _bench_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCH_DIR))


@pytest.mark.parametrize("name", BENCH_MODULES + ["harness"])
def test_bench_module_imports(name):
    module = importlib.import_module(name)
    assert module.__file__ is not None


def test_bench_scaling_runs_at_tiny_scale(tmp_path, capsys):
    bench_scaling = importlib.import_module("bench_scaling")
    output = tmp_path / "bench.json"
    code = bench_scaling.main(
        ["--profiles", "250", "--repeats", "1", "--schemes", "cbs",
         "--workers", "2", "--output", str(output)]
    )
    capsys.readouterr()
    assert code == 0
    report = json.loads(output.read_text(encoding="utf-8"))
    assert report["all_equivalent"] is True
    assert report["runs"][0]["scheme"] == "cbs"
    scaling = report["parallel_scaling"]
    assert scaling["all_equivalent"] is True
    assert {run["workers"] for run in scaling["runs"]} >= {1, 2}
    assert scaling["chunked"]["equivalent"] is True
    assert report["phase_breakdown"]["equivalent"] is True


def test_bench_scaling_speedup_floor_enforced(tmp_path, capsys, monkeypatch):
    import os

    bench_scaling = importlib.import_module("bench_scaling")
    # The floor only applies on multicore machines; pretend to be one so
    # the gate is exercised regardless of the CI box's core count.
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    code = bench_scaling.main(
        ["--profiles", "250", "--repeats", "1", "--schemes", "cbs",
         "--workers", "1", "--output", str(tmp_path / "bench.json"),
         # An absurd floor no machine meets: the gate must trip.
         "--min-parallel-speedup", "1e9"]
    )
    capsys.readouterr()
    assert code == 1


def test_bench_scaling_speedup_floor_skipped_on_one_cpu(
    tmp_path, capsys, monkeypatch
):
    import os

    bench_scaling = importlib.import_module("bench_scaling")
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    code = bench_scaling.main(
        ["--profiles", "250", "--repeats", "1", "--schemes", "cbs",
         "--workers", "1", "--output", str(tmp_path / "bench.json"),
         "--min-parallel-speedup", "1e9"]
    )
    out = capsys.readouterr().out
    # Bit-identity is still asserted (exit 0 requires all_equivalent);
    # only the speedup floor is waived.
    assert code == 0
    assert "single-CPU" in out


def test_bench_scaling_large_tier_at_tiny_scale(tmp_path, capsys):
    bench_scaling = importlib.import_module("bench_scaling")
    output = tmp_path / "bench.json"
    code = bench_scaling.main(
        ["--profiles", "250", "--repeats", "1", "--schemes", "cbs",
         "--workers", "1", "--large-tier", "--large-profiles", "300",
         "--spill-threshold-mb", "1e-6", "--output", str(output)]
    )
    capsys.readouterr()
    assert code == 0
    report = json.loads(output.read_text(encoding="utf-8"))
    tier = report["large_tier"]
    assert tier["equivalent"] is True
    assert tier["spill_leftover_files"] == []
    assert tier["spilled"]["peak_rss_mb"] >= 0.0
    assert tier["parallel_scaling"]["all_equivalent"] is True
    assert all(
        "persistent_seconds" in run
        for run in tier["parallel_scaling"]["runs"]
    )


def test_bench_streaming_runs_at_tiny_scale(tmp_path, capsys):
    bench_streaming = importlib.import_module("bench_streaming")
    output = tmp_path / "bench.json"
    code = bench_streaming.main(
        ["--profiles", "150", "--output", str(output)]
    )
    capsys.readouterr()
    assert code == 0
    report = json.loads(output.read_text(encoding="utf-8"))
    assert report["profiles"] > 0


@pytest.mark.skipif(not _HAS_TOML, reason="no TOML parser available")
@pytest.mark.parametrize(
    "config_path", CONFIG_PATHS, ids=lambda path: path.stem
)
def test_every_committed_config_runs_at_tiny_scale(config_path):
    """Drive the experiment engine over each config with a smoke cap.

    Comparison is disabled (tiny-scale numbers are not comparable to the
    full-scale baselines); the point is that the config parses, every
    cell executes, and cross-backend cells stay bit-identical.
    """
    assert config_path.exists(), config_path
    config = load_config(config_path)
    report, comparison = run_experiment(
        config, config_path=config_path, smoke_profiles=120, compare=False
    )
    assert comparison is None
    assert report["cells"], f"{config_path.stem}: no cells produced"
    for cell in report["cells"]:
        assert cell["quality"]["comparisons"] >= 0
        assert cell["perf"]["wall_seconds"] >= 0.0
    assert report["equivalence"]["all_equivalent"] is True


def test_harness_helpers_at_tiny_scale():
    harness = importlib.import_module("harness")
    from repro.graph.pruning import WeightNodePruning

    dataset = harness.clean_dataset("ar1", scale=0.05)
    blocks = harness.blocks_T("ar1", scale=0.05)
    assert len(blocks) > 0
    row = harness.traditional_mb_row(
        "smoke", blocks, dataset, lambda: WeightNodePruning()
    )
    assert "smoke" in row.formatted()
    assert 0.0 <= row.quality.pair_completeness <= 1.0
