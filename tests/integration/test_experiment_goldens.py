"""Golden-file regression tests for the experiment-engine reporters.

The JSON report is the artifact CI uploads and the comparator consumes;
the markdown table is what lands in PR summaries.  Any drift in either
format (field names, schema version, table columns, verdict wording)
must fail loudly against the committed fixtures under
``tests/integration/goldens/``.

Timings and memory are machine-dependent, so fixtures are rendered from
a :func:`scrub_nondeterministic` copy of the report (all ``seconds``/
``peak_rss_mb`` fields zeroed); everything else — quality numbers, stage
counts, pair digests, comparison verdicts — is deterministic at a fixed
seed and is compared byte-for-byte.

Refresh after an intentional format change with::

    PYTHONPATH=src python -m pytest \
        tests/integration/test_experiment_goldens.py --update-goldens
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments import (
    EXPERIMENT_SCHEMA_VERSION,
    ExperimentConfig,
    MetricSpec,
    REPORTERS,
    Tolerance,
    compare_reports,
    run_experiment,
    scrub_nondeterministic,
)

from test_cli_goldens import check_golden

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("tomllib") is None
    and importlib.util.find_spec("tomli") is None,
    reason="no TOML parser available",
)

#: Small but non-trivial: two pipelines over a tiny ar1 slice, two
#: backends so the equivalence section has something to say.
_GOLDEN_CONFIG = {
    "name": "golden",
    "description": "fixture workload for reporter goldens",
    "seed": 42,
    "datasets": [{"name": "ar1", "profiles": 300}],
    "pipelines": [
        {"label": "blast", "blocker": "token", "weighting": "chi_h",
         "pruning": "blast"},
        {"label": "cbs", "blocker": "token", "weighting": "cbs",
         "pruning": "blast"},
    ],
    "backends": ["vectorized", "python"],
}


@pytest.fixture(scope="module")
def golden_report() -> dict:
    config = ExperimentConfig.from_mapping(_GOLDEN_CONFIG)
    report, _ = run_experiment(config, compare=False)
    report = scrub_nondeterministic(report)
    # Attach a deterministic self-comparison so the fixtures also pin the
    # comparison table/JSON shape (a real baseline path would leak the
    # machine's filesystem into the fixture).
    specs = [
        MetricSpec(
            name=f"{cell['id']}:f1",
            baseline_path=f"cells[id={cell['id']}].quality.f1",
            direction="higher",
            tolerance=Tolerance(relative=1e-9),
        )
        for cell in report["cells"]
    ]
    comparison = compare_reports(report, report, specs, baseline_source="self")
    report["comparison"] = comparison.to_dict()
    return report


def test_json_reporter_golden(golden_report, update_goldens):
    rendered = REPORTERS.get("json")(golden_report)
    check_golden("experiment_report.json", rendered, update_goldens)


def test_markdown_reporter_golden(golden_report, update_goldens):
    rendered = REPORTERS.get("markdown")(golden_report)
    check_golden("experiment_report.md", rendered, update_goldens)


def test_json_schema_pin(golden_report):
    """The report's schema version and top-level key set are a contract.

    Bumping ``EXPERIMENT_SCHEMA_VERSION`` is the deliberate act that
    accompanies any shape change; this test makes forgetting it loud.
    """
    rendered = REPORTERS.get("json")(golden_report)
    report = json.loads(rendered)
    assert report["schema_version"] == EXPERIMENT_SCHEMA_VERSION == 1
    assert set(report) == {
        "schema_version",
        "benchmark",
        "name",
        "description",
        "seed",
        "repeats",
        "smoke_profiles",
        "datasets",
        "cells",
        "equivalence",
        "comparison",
    }
    for cell in report["cells"]:
        assert set(cell) == {
            "id", "dataset", "pipeline", "backend", "workers", "repeats",
            "profiles", "quality", "stages", "perf", "pairs_digest",
        }
        assert set(cell["quality"]) == {
            "pair_completeness", "pair_quality", "f1",
            "detected_duplicates", "total_duplicates", "comparisons",
            "num_blocks",
        }
        assert set(cell["perf"]) == {
            "wall_seconds", "wall_seconds_mean", "cpu_seconds",
            "peak_rss_mb",
        }


def test_goldens_are_committed_and_current(golden_report):
    """Both fixtures exist on disk (guards a forgotten --update-goldens)."""
    golden_dir = Path(__file__).parent / "goldens"
    for name in ("experiment_report.json", "experiment_report.md"):
        assert (golden_dir / name).exists(), (
            f"{name} missing; run pytest --update-goldens and commit it"
        )
