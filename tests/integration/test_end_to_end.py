"""Integration: full pipelines on the synthetic benchmarks.

These tests assert the paper's headline claims at reduced scale:
meta-blocking raises PQ by orders of magnitude at nearly unchanged PC
(Definition 2), BLAST beats mean-threshold WNP on F1, and LMI's automatic
partitioning matches a manual schema alignment on fully mappable data.
"""

import pytest

from repro import (
    Blast,
    BlastConfig,
    MetaBlocker,
    WeightingScheme,
    evaluate_blocks,
    load_clean_clean,
    load_dirty,
    prepare_blocks,
)
from repro.blocking import StandardBlocking, block_filtering, block_purging
from repro.graph.pruning import WeightNodePruning


@pytest.fixture(scope="module")
def ar1():
    return load_clean_clean("ar1", scale=0.5, seed=11)


@pytest.fixture(scope="module")
def prd():
    return load_clean_clean("prd", scale=0.6, seed=11)


class TestDefinition2:
    """Meta-blocking: PQ(B') >> PQ(B) and PC(B') ~ PC(B)."""

    def test_blast_on_ar1(self, ar1):
        result = Blast().run(ar1)
        baseline = evaluate_blocks(prepare_blocks(ar1), ar1)
        final = evaluate_blocks(result.blocks, ar1)
        assert final.pair_quality > 10 * baseline.pair_quality
        assert final.pair_completeness >= baseline.pair_completeness - 0.06

    def test_blast_on_prd(self, prd):
        result = Blast().run(prd)
        baseline = evaluate_blocks(prepare_blocks(prd), prd)
        final = evaluate_blocks(result.blocks, prd)
        assert final.pair_quality > 5 * baseline.pair_quality
        assert final.pair_completeness >= baseline.pair_completeness - 0.06


class TestBlastVsTraditionalWnp:
    def test_blast_f1_beats_mean_threshold_wnp(self, ar1):
        result = Blast().run(ar1)
        blast_quality = evaluate_blocks(result.blocks, ar1)

        blocks = prepare_blocks(ar1)  # plain token blocking baseline
        best_wnp_f1 = 0.0
        for scheme in WeightingScheme.traditional():
            for reciprocal in (False, True):
                out = MetaBlocker(
                    weighting=scheme,
                    pruning=WeightNodePruning(reciprocal=reciprocal),
                ).run(blocks)
                best_wnp_f1 = max(best_wnp_f1, evaluate_blocks(out, ar1).f1)
        assert blast_quality.f1 > best_wnp_f1


class TestLmiEqualsManualAlignment:
    def test_standard_blocking_equivalence_on_fully_mappable(self, ar1):
        """Section 4.1: on fully mappable datasets the LMI partitioning is
        equivalent to the manual schema alignment, so BLAST meta-blocking
        over Standard Blocking (token mode) and over LMI blocking yield the
        same PC and PQ."""
        result = Blast().run(ar1)
        lmi_quality = evaluate_blocks(result.blocks, ar1)

        alignment = {"title": "paper title", "authors": "author list",
                     "venue": "publication venue", "year": "yr"}
        manual = StandardBlocking(alignment, key_mode="token").build(ar1)
        manual = block_purging(manual, ar1.num_profiles)
        manual = block_filtering(manual)
        manual_out = MetaBlocker().run(manual)
        manual_quality = evaluate_blocks(manual_out, ar1)

        assert lmi_quality.pair_completeness == pytest.approx(
            manual_quality.pair_completeness, abs=0.01
        )
        assert lmi_quality.pair_quality == pytest.approx(
            manual_quality.pair_quality, rel=0.1
        )


class TestDirtyER:
    def test_census_pipeline(self):
        ds = load_dirty("census", scale=0.5, seed=11)
        result = Blast().run(ds)
        quality = evaluate_blocks(result.blocks, ds)
        assert quality.pair_completeness > 0.7
        baseline = evaluate_blocks(prepare_blocks(ds), ds)
        assert quality.pair_quality > baseline.pair_quality

    def test_cora_high_precision(self):
        ds = load_dirty("cora", scale=0.5, seed=11)
        result = Blast().run(ds)
        quality = evaluate_blocks(result.blocks, ds)
        # heavy duplication: retained pairs are overwhelmingly matches
        assert quality.pair_quality > 0.5
        assert quality.pair_completeness > 0.6


class TestLshEquivalence:
    def test_lsh_pipeline_matches_exact_pipeline(self):
        """Section 4.3/4.4: with a conservative threshold the LSH step
        yields identical PC and PQ to exhaustive LMI."""
        ds = load_clean_clean("dbp", scale=0.3, seed=11)
        exact = Blast().run(ds)
        approx = Blast(BlastConfig(use_lsh=True, lsh_threshold=0.2, seed=5)).run(ds)
        q_exact = evaluate_blocks(exact.blocks, ds)
        q_approx = evaluate_blocks(approx.blocks, ds)
        assert q_approx.pair_completeness == pytest.approx(
            q_exact.pair_completeness, abs=0.01
        )
        assert q_approx.pair_quality == pytest.approx(
            q_exact.pair_quality, rel=0.05
        )


class TestEndToEndMatching:
    def test_blast_blocks_save_matching_time(self, ar1):
        """Section 4.2.2: executing the comparisons of the BLAST collection
        costs a fraction of executing the baseline's, at no recall loss."""
        from repro.matching import JaccardMatcher

        baseline = prepare_blocks(ar1)
        final = Blast().run(ar1).blocks
        matcher = JaccardMatcher(threshold=0.35)
        result_base = matcher.execute(baseline, ar1)
        result_blast = matcher.execute(final, ar1)
        assert result_blast.comparisons_executed < result_base.comparisons_executed / 5
        assert result_blast.recall >= result_base.recall - 0.05
