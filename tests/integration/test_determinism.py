"""Integration: the whole system is reproducible bit for bit.

Every benchmark table must regenerate identically, so every layer — data
generation, LSH, SVM training, pruning — has to be deterministic given its
seeds.  These tests pin that guarantee end to end.
"""

from repro import (
    Blast,
    BlastConfig,
    evaluate_blocks,
    load_clean_clean,
    load_dirty,
)
from repro.supervised import SupervisedMetaBlocking


def _pair_set(blocks):
    return {tuple(sorted(b.profiles)) for b in blocks}


class TestDatasetDeterminism:
    def test_clean_clean_regeneration(self):
        a = load_clean_clean("mov", scale=0.2, seed=99)
        b = load_clean_clean("mov", scale=0.2, seed=99)
        assert [p.attributes for p in a.collection1] == \
            [p.attributes for p in b.collection1]
        assert [p.attributes for p in a.collection2] == \
            [p.attributes for p in b.collection2]
        assert a.truth_pairs == b.truth_pairs

    def test_dirty_regeneration(self):
        a = load_dirty("cora", scale=0.3, seed=99)
        b = load_dirty("cora", scale=0.3, seed=99)
        assert [p.attributes for p in a.collection1] == \
            [p.attributes for p in b.collection1]


class TestPipelineDeterminism:
    def test_blast_output_identical_across_runs(self):
        dataset = load_clean_clean("prd", scale=0.5, seed=5)
        out1 = Blast().run(dataset).blocks
        out2 = Blast().run(dataset).blocks
        assert _pair_set(out1) == _pair_set(out2)

    def test_lsh_pipeline_deterministic_given_seed(self):
        dataset = load_clean_clean("dbp", scale=0.25, seed=5)
        config = BlastConfig(use_lsh=True, lsh_threshold=0.3, seed=17)
        out1 = Blast(config).run(dataset).blocks
        out2 = Blast(config).run(dataset).blocks
        assert _pair_set(out1) == _pair_set(out2)

    def test_supervised_deterministic_given_seed(self):
        from repro import prepare_blocks

        dataset = load_clean_clean("ar1", scale=0.4, seed=5)
        base = prepare_blocks(dataset)
        out1 = SupervisedMetaBlocking(seed=23).run(base, dataset)
        out2 = SupervisedMetaBlocking(seed=23).run(base, dataset)
        assert _pair_set(out1) == _pair_set(out2)

    def test_quality_metrics_stable(self):
        dataset = load_clean_clean("ar1", scale=0.4, seed=5)
        q1 = evaluate_blocks(Blast().run(dataset).blocks, dataset)
        q2 = evaluate_blocks(Blast().run(dataset).blocks, dataset)
        assert q1 == q2
