"""Golden-file regression tests for the CLI's machine-readable output.

``repro run`` and ``repro stream`` are the outputs external tooling
consumes; any drift in their format or content (column order, JSON field
names, candidate sets, weight values) must fail loudly.  These tests
replay the paper's Figure 1 example through both commands and compare the
produced files byte-for-byte against committed fixtures under
``tests/integration/goldens/``.

When an intentional change alters the output, refresh the fixtures with::

    PYTHONPATH=src python -m pytest tests/integration/test_cli_goldens.py \
        --update-goldens

and commit the diff — the review of that diff IS the format change review.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.data.io import save_collection

GOLDEN_DIR = Path(__file__).parent / "goldens"


def check_golden(name: str, actual: str, update: bool) -> None:
    """Compare *actual* to the committed fixture (or rewrite it)."""
    path = GOLDEN_DIR / name
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        return
    assert path.exists(), (
        f"golden fixture {path} is missing; generate it with "
        "pytest --update-goldens and commit it"
    )
    assert actual == path.read_text(encoding="utf-8"), (
        f"{name} drifted from the committed golden; if the change is "
        "intentional, refresh with pytest --update-goldens and commit"
    )


@pytest.fixture
def figure1_files(figure1_clean_clean, tmp_path: Path) -> dict[str, Path]:
    """The Figure 1 clean-clean task written as CLI input files."""
    left = tmp_path / "left.jsonl"
    right = tmp_path / "right.jsonl"
    save_collection(figure1_clean_clean.collection1, left)
    save_collection(figure1_clean_clean.collection2, right)
    return {"left": left, "right": right}


class TestRunGoldens:
    def test_candidate_pairs_csv(self, figure1_files, tmp_path, update_goldens,
                                 capsys):
        output = tmp_path / "pairs.csv"
        code = main(["run",
                     "--left", str(figure1_files["left"]),
                     "--right", str(figure1_files["right"]),
                     "--output", str(output)])
        capsys.readouterr()  # timing line — not golden material
        assert code == 0
        check_golden(
            "run_figure1_pairs.csv",
            output.read_text(encoding="utf-8"),
            update_goldens,
        )

    def test_python_backend_produces_the_same_golden(
        self, figure1_files, tmp_path, update_goldens, capsys
    ):
        if update_goldens:
            pytest.skip("fixture refreshed by test_candidate_pairs_csv")
        # The golden doubles as a cross-backend anchor: every backend must
        # reproduce the committed bytes, not merely agree with each other.
        for backend, extra in (
            ("python", []),
            ("parallel", ["--workers", "1", "--shard-size", "4"]),
        ):
            output = tmp_path / f"pairs-{backend}.csv"
            code = main(["run",
                         "--left", str(figure1_files["left"]),
                         "--right", str(figure1_files["right"]),
                         "--backend", backend,
                         "--output", str(output), *extra])
            capsys.readouterr()
            assert code == 0
            check_golden(
                "run_figure1_pairs.csv",
                output.read_text(encoding="utf-8"),
                update=False,
            )


class TestStreamGoldens:
    def test_arrival_candidates_jsonl(self, figure1_dirty, tmp_path,
                                      update_goldens, capsys):
        stream_input = tmp_path / "stream.jsonl"
        with stream_input.open("w", encoding="utf-8") as handle:
            for profile in figure1_dirty.collection1:
                record = {
                    "id": profile.profile_id,
                    "attributes": [list(pair) for pair in profile.attributes],
                }
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        output = tmp_path / "candidates.jsonl"
        code = main(["stream",
                     "--input", str(stream_input),
                     "--output", str(output)])
        capsys.readouterr()
        assert code == 0
        check_golden(
            "stream_figure1_candidates.jsonl",
            output.read_text(encoding="utf-8"),
            update_goldens,
        )

    def test_exact_consistency_jsonl(self, figure1_dirty, tmp_path,
                                     update_goldens, capsys):
        stream_input = tmp_path / "stream.jsonl"
        with stream_input.open("w", encoding="utf-8") as handle:
            for profile in figure1_dirty.collection1:
                record = {
                    "id": profile.profile_id,
                    "attributes": [list(pair) for pair in profile.attributes],
                }
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        output = tmp_path / "candidates-exact.jsonl"
        code = main(["stream",
                     "--input", str(stream_input),
                     "--output", str(output),
                     "--consistency", "exact",
                     "--weighting", "cbs"])
        capsys.readouterr()
        assert code == 0
        check_golden(
            "stream_figure1_exact_cbs.jsonl",
            output.read_text(encoding="utf-8"),
            update_goldens,
        )
