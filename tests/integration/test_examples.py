"""Integration: every shipped example runs to completion.

Examples are user-facing entry points; a broken example is a broken
deliverable.  Each is executed as a subprocess exactly as a user would run
it, and its key output lines are sanity-checked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "BLAST:" in out
        assert "precision (PQ) improved" in out

    def test_custom_pipeline(self):
        out = _run("custom_pipeline.py")
        assert "explicit pipeline:" in out
        assert "meta-blocking" in out  # the stage report table
        assert "token+cbs:" in out and "qgrams+js:" in out
        assert "blast-strict pruning:" in out

    def test_paper_walkthrough_reaches_figure_3c(self):
        out = _run("paper_walkthrough.py")
        assert "Figure 1b" in out and "Figure 3c" in out
        # the walkthrough must end with only the two true matches retained
        assert "SUPERFLUOUS" not in out
        assert "p1-p3  (match)" in out
        assert "p2-p4  (match)" in out

    def test_heterogeneous_catalogs(self):
        out = _run("heterogeneous_catalogs.py")
        assert "BLAST" in out
        assert "induced attribute alignment" in out

    def test_dirty_dedup(self):
        out = _run("dirty_dedup.py")
        assert "resolved" in out
        assert "duplicate group" in out

    def test_streaming_session(self):
        out = _run("streaming_session.py")
        assert "arrival-time replay:" in out
        assert "first match:" in out
        assert "snapshot round trip:" in out
        assert "identical=True" in out

    def test_serving_multi_tenant(self):
        out = _run("serving_multi_tenant.py")
        assert "serving two tenants" in out
        assert "pipelined 6/6 upserts" in out
        assert "acme: candidates of a1 -> ['a2']" in out
        assert "killed in the commit window (exit 23" in out
        assert "identical to never-crashed sessions: True" in out

    @pytest.mark.slow
    def test_end_to_end_er(self):
        out = _run("end_to_end_er.py")
        assert "BLAST overhead" in out
        assert "token blocking (raw)" in out
