"""Integration: the paper's worked example (Figures 1-3) end to end.

These tests pin the narrative of Sections 1 and 3 to executable assertions:
Token Blocking produces Figure 1b; the blocking graph carries Figure 1c's
weights; attribute disambiguation splits the "abram" block (Figure 2);
entropy weighting plus BLAST pruning removes both superfluous edges while
keeping both matches (Figure 3c).
"""

from repro.blocking import LooselySchemaAwareBlocking, TokenBlocking
from repro.blocking.schema_aware import make_key_entropy
from repro.graph import (
    BlockingGraph,
    MetaBlocker,
    WeightingScheme,
    compute_weights,
)
from repro.metrics import evaluate_blocks
from repro.schema import build_attribute_profiles, LooseAttributeMatchInduction
from repro.schema.entropy import extract_loose_schema_entropies

P1, P2, P3, P4 = 0, 1, 2, 3


class TestFigure1:
    def test_token_blocking_gives_twelve_blocks(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        assert len(blocks) == 12

    def test_blocking_graph_weights(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        cbs = compute_weights(graph, WeightingScheme.CBS)
        assert cbs[(P1, P3)] == 4
        assert cbs[(P2, P4)] == 4
        assert cbs[(P1, P4)] == 3
        assert cbs[(P2, P3)] == 4
        assert cbs[(P1, P2)] == 1
        assert cbs[(P3, P4)] == 1


class TestFigure2:
    def test_lmi_separates_names_from_streets(self, figure1_clean_clean):
        """LMI on the four profiles finds a person-name cluster distinct
        from the street/address cluster — the prerequisite of Figure 2."""
        ds = figure1_clean_clean
        profiles1 = build_attribute_profiles(ds.collection1, 0)
        profiles2 = build_attribute_profiles(ds.collection2, 1)
        part = LooseAttributeMatchInduction(alpha=0.8).induce(profiles1, profiles2)
        name_cluster = part.cluster_of(0, "Name")
        street_cluster = part.cluster_of(0, "mail")
        assert name_cluster != street_cluster
        assert name_cluster != 0

    def test_disambiguation_lowers_superfluous_weights(self, figure1_dirty):
        """Figure 2b: after splitting "abram", the weights of the
        superfluous edges drop while the matches keep theirs."""
        from repro.schema.partition import AttributePartitioning

        part = AttributePartitioning(
            clusters=[{(0, "Name"), (0, "FirstName"), (0, "SecondName"),
                       (0, "name1"), (0, "name2"), (0, "full name")}],
            glue={(0, "profession"), (0, "year"), (0, "occupation"),
                  (0, "birth year"), (0, "job"), (0, "work info"),
                  (0, "b. date"), (0, "Addr."), (0, "mail"), (0, "Loc"),
                  (0, "loc")},
        )
        plain = compute_weights(
            BlockingGraph(TokenBlocking().build(figure1_dirty)),
            WeightingScheme.CBS,
        )
        aware = compute_weights(
            BlockingGraph(LooselySchemaAwareBlocking(part).build(figure1_dirty)),
            WeightingScheme.CBS,
        )
        # p1-p2 and p3-p4 shared only the ambiguous "abram": edges vanish.
        assert (P1, P2) not in aware and (P3, P4) not in aware
        assert (P1, P2) in plain and (P3, P4) in plain
        # the true matches keep their support
        assert aware[(P1, P3)] >= plain[(P1, P3)] - 1
        assert aware[(P2, P4)] >= plain[(P2, P4)] - 1


class TestFigure3:
    def test_full_blast_retains_exactly_the_matches(self, figure1_clean_clean):
        """Figure 3c: both superfluous comparisons removed, both matches kept."""
        ds = figure1_clean_clean
        profiles1 = build_attribute_profiles(ds.collection1, 0)
        profiles2 = build_attribute_profiles(ds.collection2, 1)
        part = LooseAttributeMatchInduction(alpha=0.8).induce(profiles1, profiles2)
        part = extract_loose_schema_entropies(part, ds.collection1, ds.collection2)
        blocks = LooselySchemaAwareBlocking(part).build(ds)
        out = MetaBlocker(key_entropy=make_key_entropy(part)).run(blocks)
        quality = evaluate_blocks(out, ds)
        assert quality.pair_completeness == 1.0
        retained = {tuple(sorted(b.profiles)) for b in out}
        assert (P1, P3) in retained
        assert (P2, P4) in retained
        assert (P1, P4) not in retained  # removed in Figure 2c
