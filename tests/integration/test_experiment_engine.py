"""Acceptance tests: the experiment engine reproduces the committed bench.

Two contracts from the issue, asserted end-to-end:

* ``repro bench benchmarks/configs/scaling.toml`` reproduces the
  committed ``BENCH_metablocking.json`` within tolerance (here: exactly —
  the config pins every gated metric with zero tolerance);
* a deliberately degraded run fails the comparison with the offending
  metric named in the output and a non-zero exit code.

The full-scale run takes a few seconds, so it happens once per module
and every test reads from it.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import load_config, run_experiment

REPO_ROOT = Path(__file__).resolve().parents[2]
SCALING_CONFIG = REPO_ROOT / "benchmarks" / "configs" / "scaling.toml"
CI_SMOKE_CONFIG = REPO_ROOT / "benchmarks" / "configs" / "ci_smoke.toml"

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("tomllib") is None
    and importlib.util.find_spec("tomli") is None,
    reason="no TOML parser available",
)


@pytest.fixture(scope="module")
def scaling_outcome():
    config = load_config(SCALING_CONFIG)
    return run_experiment(config, config_path=SCALING_CONFIG)


def test_scaling_config_reproduces_committed_bench(scaling_outcome):
    report, comparison = scaling_outcome
    assert comparison is not None
    assert comparison.ok, comparison.summary()
    assert len(comparison.verdicts) == 9
    assert {verdict.status for verdict in comparison.verdicts} == {"ok"}
    gated = {verdict.name for verdict in comparison.verdicts}
    assert gated == {
        "profiles",
        "prepared_blocks",
        "aggregate_comparisons",
        "retained_edges_chi_h",
        "retained_edges_cbs",
        "retained_edges_js",
        "retained_edges_ecbs",
        "retained_edges_ejs",
        "retained_edges_arcs",
    }


def test_scaling_report_matches_bench_headline_numbers(scaling_outcome):
    report, _ = scaling_outcome
    bench = json.loads(
        (REPO_ROOT / "BENCH_metablocking.json").read_text(encoding="utf-8")
    )
    assert report["datasets"][0]["profiles"] == bench["profiles"]
    cells = {cell["id"]: cell for cell in report["cells"]}
    chi_h = cells["ar1/chi_h/vectorized"]
    assert (
        chi_h["stages"]["block-filtering"]["blocks_out"] == bench["blocks"]
    )
    assert (
        chi_h["stages"]["block-filtering"]["comparisons_out"]
        == bench["aggregate_comparisons"]
    )
    retained = {
        run["scheme"]: run["retained_edges"] for run in bench["runs"]
    }
    for scheme, edges in retained.items():
        cell = cells[f"ar1/{scheme}/vectorized"]
        assert cell["stages"]["meta-blocking"]["blocks_out"] == edges, scheme


def test_degraded_report_fails_comparison_naming_the_metric(
    scaling_outcome, tmp_path, capsys
):
    """A seeded regression must exit non-zero and name the bad metric."""
    report, _ = scaling_outcome
    degraded = json.loads(json.dumps(report))
    for cell in degraded["cells"]:
        if cell["id"] == "ar1/chi_h/vectorized":
            cell["stages"]["meta-blocking"]["blocks_out"] += 100
    degraded_path = tmp_path / "degraded.json"
    degraded_path.write_text(json.dumps(degraded), encoding="utf-8")

    code = main(
        ["bench", str(SCALING_CONFIG), "--compare-only", str(degraded_path)]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "retained_edges_chi_h" in captured.out
    assert "REGRESSED" in captured.out


def test_clean_report_passes_compare_only(scaling_outcome, tmp_path, capsys):
    report, _ = scaling_outcome
    clean_path = tmp_path / "clean.json"
    clean_path.write_text(json.dumps(report), encoding="utf-8")
    code = main(
        ["bench", str(SCALING_CONFIG), "--compare-only", str(clean_path)]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "CLEAN" in captured.out


def test_cli_smoke_run_writes_both_reports(tmp_path, capsys):
    """One CLI invocation produces the JSON and markdown artifacts."""
    output = tmp_path / "report.json"
    markdown = tmp_path / "report.md"
    code = main(
        [
            "bench", str(CI_SMOKE_CONFIG),
            "--smoke-profiles", "120",
            "--output", str(output),
            "--markdown", str(markdown),
        ]
    )
    capsys.readouterr()
    assert code == 0
    report = json.loads(output.read_text(encoding="utf-8"))
    assert report["benchmark"] == "experiment_engine"
    assert report["smoke_profiles"] == 120
    # Smoke runs skip comparison by default: tiny-scale numbers are not
    # comparable to the committed full-scale baseline.
    assert report["comparison"] is None
    assert report["equivalence"]["all_equivalent"] is True
    rendered = markdown.read_text(encoding="utf-8")
    assert rendered.startswith("# ")
    for cell in report["cells"]:
        assert cell["id"] in rendered


def test_missing_metric_in_current_report_is_a_failure(tmp_path, capsys):
    """Deleting a gated metric from the run is itself a regression."""
    config = load_config(SCALING_CONFIG)
    report, _ = run_experiment(
        config, config_path=SCALING_CONFIG, compare=False
    )
    for cell in report["cells"]:
        if cell["id"] == "ar1/chi_h/vectorized":
            del cell["stages"]["meta-blocking"]
    mutated_path = tmp_path / "mutated.json"
    mutated_path.write_text(json.dumps(report), encoding="utf-8")
    code = main(
        ["bench", str(SCALING_CONFIG), "--compare-only", str(mutated_path)]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "retained_edges_chi_h" in captured.out
