"""Integration: the optional/extension features composed end to end."""

import pytest

from repro import Blast, BlastConfig, evaluate_blocks, load_clean_clean
from repro.blocking import CanopyBlocking, block_filtering, block_purging
from repro.graph import MetaBlocker
from repro.metrics import block_collection_stats


class TestTfIdfPipeline:
    def test_tfidf_representation_matches_binary_on_ar1(self):
        """Section 2.1's alternative representation plugged into the full
        pipeline: on a fully mappable pair both representations find the
        same alignment and hence the same final quality."""
        dataset = load_clean_clean("ar1", scale=0.5, seed=3)
        binary = Blast(BlastConfig(representation="binary")).run(dataset)
        tfidf = Blast(BlastConfig(representation="tfidf")).run(dataset)
        qb = evaluate_blocks(binary.blocks, dataset)
        qt = evaluate_blocks(tfidf.blocks, dataset)
        assert qt.pair_completeness == pytest.approx(qb.pair_completeness, abs=0.01)
        assert qt.pair_quality == pytest.approx(qb.pair_quality, rel=0.1)

    def test_tfidf_plus_lsh_rejected(self):
        with pytest.raises(ValueError, match="LSH"):
            BlastConfig(representation="tfidf", use_lsh=True)


class TestCanopyComposition:
    def test_canopy_plus_metablocking(self):
        """Canopy blocks are a valid meta-blocking substrate too."""
        dataset = load_clean_clean("prd", scale=0.4, seed=3)
        canopies = CanopyBlocking(loose_threshold=0.2, tight_threshold=0.6,
                                  seed=1).build(dataset)
        canopies = block_filtering(
            block_purging(canopies, dataset.num_profiles)
        )
        out = MetaBlocker().run(canopies)
        before = evaluate_blocks(canopies, dataset)
        after = evaluate_blocks(out, dataset)
        assert after.pair_quality >= before.pair_quality
        assert block_collection_stats(out).redundancy_ratio == 1.0


class TestQgramPipelineOnTypos:
    def test_qgram_keys_recover_typo_matches(self):
        """With heavy typos, q-gram keys index matches whole tokens miss."""
        from repro.blocking import LooselySchemaAwareBlocking
        from repro.datasets.generator import (
            FieldSpec,
            NoiseModel,
            SourceSchema,
            make_clean_clean_dataset,
        )
        from repro.datasets import samplers as s

        heavy_typos = NoiseModel(typo_prob=0.9, token_drop_prob=0,
                                 abbreviate_prob=0, missing_prob=0)
        fields = (FieldSpec("name", s.person_name),)
        ds = make_clean_clean_dataset(
            "typos", fields,
            SourceSchema("A", {"name": ("name",)}, noise=heavy_typos),
            SourceSchema("B", {"label": ("name",)}, noise=heavy_typos),
            size1=80, size2=80, matches=60, seed=9,
        )
        part = Blast().extract_loose_schema(ds)
        token_blocks = LooselySchemaAwareBlocking(part).build(ds)
        qgram_blocks = LooselySchemaAwareBlocking(
            part, transformation="qgram", q=3
        ).build(ds)
        pc_token = evaluate_blocks(token_blocks, ds).pair_completeness
        pc_qgram = evaluate_blocks(qgram_blocks, ds).pair_completeness
        assert pc_qgram > pc_token
