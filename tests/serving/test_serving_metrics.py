"""Latency rings and counters: windows, percentiles, roll-ups."""

from __future__ import annotations

import pytest

from repro.serving.metrics import LatencyRing, ServerMetrics, TenantMetrics


class TestLatencyRing:
    def test_empty_ring_reports_zeros(self):
        assert LatencyRing().percentiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_nearest_rank_percentiles(self):
        ring = LatencyRing()
        for ms in range(1, 101):  # 1ms..100ms
            ring.record(ms / 1000)
        stats = ring.percentiles()
        assert stats == {"p50": 50.0, "p95": 95.0, "p99": 99.0, "max": 100.0}

    def test_single_sample(self):
        ring = LatencyRing()
        ring.record(0.002)
        assert ring.percentiles() == {
            "p50": 2.0, "p95": 2.0, "p99": 2.0, "max": 2.0,
        }

    def test_window_evicts_oldest_samples(self):
        ring = LatencyRing(capacity=4)
        for seconds in (9.0, 9.0, 9.0, 9.0, 0.001, 0.001, 0.001, 0.001):
            ring.record(seconds)
        assert ring.percentiles()["max"] == 1.0  # ms; the 9s era is gone
        assert ring.count == 8
        assert len(ring) == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            LatencyRing(capacity=0)


class TestTenantMetrics:
    def test_snapshot_dict_shape_and_batch_mean(self):
        metrics = TenantMetrics()
        metrics.upserts = 6
        metrics.deletes = 2
        metrics.batches = 2
        metrics.batched_ops = 8
        metrics.write_latency.record(0.001)
        snapshot = metrics.snapshot_dict(queue_depth=3)
        assert snapshot["upserts"] == 6
        assert snapshot["queue_depth"] == 3
        assert snapshot["mean_batch_size"] == 4.0
        assert snapshot["write_latency_ms"]["p50"] == 1.0
        assert metrics.writes == 8

    def test_zero_batches_mean_is_zero(self):
        assert TenantMetrics().snapshot_dict()["mean_batch_size"] == 0.0


class TestServerMetrics:
    def test_snapshot_dict_reports_rate(self):
        metrics = ServerMetrics()
        metrics.requests = 10
        snapshot = metrics.snapshot_dict()
        assert snapshot["requests"] == 10
        assert snapshot["uptime_seconds"] >= 0
        assert snapshot["requests_per_second"] >= 0
        assert set(snapshot) == {
            "uptime_seconds", "connections", "requests",
            "requests_per_second", "bad_requests", "internal_errors",
            "evictions",
        }
