"""The TCP front end: verbs, error mapping, pipelining, shutdown."""

from __future__ import annotations

import asyncio
import json

from _serving_helpers import ROWS, serving_config, state_of

from repro.serving import ReproServer, ServingClient, TenantRegistry


def run_server_scenario(tmp_path, scenario, **config_overrides):
    """Boot a server on a free port, run *scenario(client, server)*."""

    async def main():
        registry = TenantRegistry(tmp_path, serving_config(**config_overrides))
        server = ReproServer(registry, log_interval=None)
        await server.start()
        client = await ServingClient.connect("127.0.0.1", server.port)
        try:
            return await scenario(client, server)
        finally:
            await client.close()
            await server.shutdown()

    return asyncio.run(main())


class TestVerbs:
    def test_upsert_query_delete_round_trip(self, tmp_path):
        async def scenario(client, server):
            for pid, attributes in ROWS:
                ack = await client.upsert("t1", pid, attributes)
                assert ack["applied"] is True
            found = await client.query("t1", "p1", k=5)
            assert [c["id"] for c in found] == ["p2"]
            assert (await client.delete("t1", "p2"))["applied"] is True
            assert await client.query("t1", "p1") == []
            assert await client.ping()

        run_server_scenario(tmp_path, scenario)

    def test_tenants_are_isolated(self, tmp_path):
        async def scenario(client, server):
            await client.upsert("t1", "p1", [["name", "john abram"]])
            await client.upsert("t2", "p1", [["name", "ellen smith"]])
            response = await client.request(
                {"v": "query", "tenant": "t2", "id": "p1"}
            )
            assert response["ok"] and response["candidates"] == []
            stats = await client.stats()
            assert stats["totals"]["tenants_resident"] == 2
            assert set(stats["tenants"]) == {"t1", "t2"}

        run_server_scenario(tmp_path, scenario)

    def test_snapshot_verb_writes_the_file(self, tmp_path):
        async def scenario(client, server):
            await client.upsert("t1", "p1", [["name", "john abram"]])
            response = await client.snapshot("t1")
            assert response["snapshot"].endswith("snapshot.json.gz")
            assert (tmp_path / "t1" / "snapshot.json.gz").exists()

        run_server_scenario(tmp_path, scenario)

    def test_stats_scoped_to_one_tenant(self, tmp_path):
        async def scenario(client, server):
            await client.upsert("t1", "p1", [["name", "john abram"]])
            scoped = await client.stats("t1")
            assert scoped["t1"]["upserts"] == 1
            assert "write_latency_ms" in scoped["t1"]

        run_server_scenario(tmp_path, scenario)


class TestErrorMapping:
    def test_every_defect_gets_a_coded_response(self, tmp_path):
        async def scenario(client, server):
            cases = [
                (b"not json\n", "bad_request"),
                (json.dumps({"v": "explode"}).encode() + b"\n", "bad_request"),
                (json.dumps({"v": "query", "tenant": "../x", "id": "p"})
                 .encode() + b"\n", "bad_request"),
            ]
            for raw, code in cases:
                client._writer.write(raw)
                await client._writer.drain()
                response = json.loads(await client._reader.readline())
                assert response == {
                    "ok": False,
                    "error": code,
                    "message": response["message"],
                }
            not_found = await client.request(
                {"v": "query", "tenant": "t1", "id": "ghost", "req": 9}
            )
            assert not_found["error"] == "not_found"
            assert not_found["req"] == 9  # correlation survives errors

        run_server_scenario(tmp_path, scenario)

    def test_connection_survives_bad_requests(self, tmp_path):
        async def scenario(client, server):
            assert (await client.request({"v": "nope"}))["ok"] is False
            assert await client.ping()
            assert server.metrics.bad_requests == 1

        run_server_scenario(tmp_path, scenario)


class TestPipelining:
    def test_responses_come_back_in_request_order(self, tmp_path):
        async def scenario(client, server):
            records = [
                {"v": "upsert", "tenant": "t1", "id": f"p{i}",
                 "attributes": [["name", "bulk load"]], "req": i}
                for i in range(40)
            ]
            records.insert(20, {"v": "ping", "req": "mid"})
            responses = await client.pipeline(records)
            assert [r["req"] for r in responses] == [r["req"] for r in records]
            assert all(r["ok"] for r in responses)
            stats = await client.stats("t1")
            assert stats["t1"]["upserts"] == 40
            # Pipelined writes actually batched (the queue had depth).
            assert stats["t1"]["mean_batch_size"] > 1.0

        run_server_scenario(
            tmp_path, scenario, serve_max_queue=256, serve_batch_size=16
        )

    def test_two_connections_share_one_tenant_safely(self, tmp_path):
        async def scenario(client, server):
            other = await ServingClient.connect("127.0.0.1", server.port)
            try:
                half_a = [
                    {"v": "upsert", "tenant": "t1", "id": f"a{i}",
                     "attributes": [["name", "left half"]]}
                    for i in range(25)
                ]
                half_b = [
                    {"v": "upsert", "tenant": "t1", "id": f"b{i}",
                     "attributes": [["name", "right half"]]}
                    for i in range(25)
                ]
                res_a, res_b = await asyncio.gather(
                    client.pipeline(half_a), other.pipeline(half_b)
                )
                assert all(r["ok"] for r in res_a + res_b)
                stats = await client.stats("t1")
                assert stats["t1"]["upserts"] == 50
            finally:
                await other.close()

        run_server_scenario(tmp_path, scenario)


class TestShutdown:
    def test_graceful_shutdown_persists_every_tenant(self, tmp_path):
        async def main():
            registry = TenantRegistry(tmp_path, serving_config())
            server = ReproServer(registry, log_interval=None)
            await server.start()
            client = await ServingClient.connect("127.0.0.1", server.port)
            for pid, attributes in ROWS:
                await client.upsert("t1", pid, attributes)
            await client.upsert("t2", "x1", [["name", "other tenant"]])
            expected = {
                tid: state_of((await registry.get(tid)).session)
                for tid in ("t1", "t2")
            }
            assert (await client.shutdown())["draining"] is True
            await client.close()
            await server.serve_forever(install_signal_handlers=False)

            # Every tenant snapshotted; a fresh registry restores exactly.
            fresh = TenantRegistry(tmp_path, serving_config())
            for tid in ("t1", "t2"):
                assert (tmp_path / tid / "snapshot.json.gz").exists()
                tenant = await fresh.get(tid)
                assert state_of(tenant.session) == expected[tid]
            await fresh.close_all()

        asyncio.run(main())

    def test_requests_after_drain_get_shutting_down(self, tmp_path):
        async def main():
            registry = TenantRegistry(tmp_path, serving_config())
            server = ReproServer(registry, log_interval=None)
            await server.start()
            client = await ServingClient.connect("127.0.0.1", server.port)
            await client.upsert("t1", "p1", [["name", "john abram"]])
            await registry.close_all()
            response = await client.request(
                {"v": "upsert", "tenant": "t1", "id": "p2",
                 "attributes": [["name", "late"]]}
            )
            assert response["error"] == "shutting_down"
            await client.close()
            await server.shutdown()

        asyncio.run(main())
