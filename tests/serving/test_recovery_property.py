"""The recovery property: any mixed multi-tenant op stream, crashed at
any point, recovers every tenant to its exact pre-crash state.

Hypothesis drives a stream of upserts/deletes across several tenants
through real tenant actors (writes go queue -> writer task -> journal ->
session), picks an arbitrary crash prefix and arbitrary mid-stream
snapshot points, then "crashes" the registry — tenants close *without*
their final snapshot, so the post-snapshot tail of every journal is
exactly what a killed process leaves behind (each journal line is
flushed before its op applies; see the subprocess kill tests for the
genuine-SIGKILL version of the same contract).

A fresh registry attached to the same data dir must rebuild each tenant
bit-identically to a per-tenant oracle session that applied the same
prefix and never crashed.
"""

from __future__ import annotations

import asyncio
import json

from hypothesis import given, settings, strategies as st

from _serving_helpers import serving_config, state_of

from repro.data import EntityProfile
from repro.serving import TenantRegistry
from repro.serving.protocol import parse_request
from repro.streaming import StreamingSession

TENANTS = ("ta", "tb", "tc")
IDS = ("p0", "p1", "p2")
WORDS = ("john abram", "ellen smith", "john smith", "abram street")

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("upsert"),
            st.sampled_from(TENANTS),
            st.sampled_from(IDS),
            st.sampled_from(WORDS),
        ),
        st.tuples(
            st.just("delete"),
            st.sampled_from(TENANTS),
            st.sampled_from(IDS),
            st.none(),
        ),
    ),
    min_size=1,
    max_size=16,
)


def to_request(kind: str, tenant: str, pid: str, text: str | None):
    record = {"v": kind, "tenant": tenant, "id": pid}
    if kind == "upsert":
        record["attributes"] = [["name", text]]
    return parse_request(json.dumps(record))


@given(ops=operations, data=st.data())
@settings(max_examples=25, deadline=None)
def test_any_crash_prefix_recovers_every_tenant_exactly(
    tmp_path_factory, ops, data
):
    crash_at = data.draw(
        st.integers(min_value=0, max_value=len(ops)), label="crash_at"
    )
    snapshot_at = data.draw(
        st.sets(st.integers(min_value=0, max_value=max(crash_at - 1, 0))),
        label="snapshot_at",
    )
    tmp = tmp_path_factory.mktemp("serving-recovery")
    survived = ops[:crash_at]

    async def run_and_crash() -> None:
        registry = TenantRegistry(tmp, serving_config())
        for index, (kind, tenant_id, pid, text) in enumerate(survived):
            tenant = await registry.get(tenant_id)
            await tenant.submit(to_request(kind, tenant_id, pid, text))
            if index in snapshot_at:
                await tenant.snapshot()
        # Crash: journals carry everything past the last snapshot.
        await registry.close_all(snapshot=False)

    asyncio.run(run_and_crash())

    oracles: dict[str, StreamingSession] = {}
    for kind, tenant_id, pid, text in survived:
        session = oracles.setdefault(
            tenant_id, StreamingSession(serving_config())
        )
        if kind == "upsert":
            session.upsert(EntityProfile.from_dict(pid, {"name": text}))
        else:
            session.delete(pid)

    async def recover_and_check() -> None:
        registry = TenantRegistry(tmp, serving_config())
        touched = sorted(oracles)
        assert registry.known_tenants() == touched
        for tenant_id in touched:
            tenant = await registry.get(tenant_id)
            assert state_of(tenant.session) == state_of(oracles[tenant_id])
            assert tenant.metrics.recoveries == 1
        await registry.close_all()

    asyncio.run(recover_and_check())
