"""Killed servers: SIGKILL-grade crashes recover every tenant exactly.

The acceptance contract of the serving layer: a server process killed by
an injected fault (``REPRO_FAULTS=...=kill@N`` — ``os._exit``, no
cleanup, exit code 23) loses nothing that was journaled.  A fresh
registry attached to the same data dir rebuilds every tenant
bit-identically to the oracle that never crashed — including the
operation that was mid-commit when the process died (journaled but not
yet applied: the journal is the truth).
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

from _serving_helpers import serving_config, state_of

from repro.data import EntityProfile
from repro.serving import ServingClient, TenantRegistry
from repro.streaming import StreamingSession

SRC = Path(__file__).resolve().parents[2] / "src"

#: A mixed two-tenant op stream, sent sequentially (each op acked before
#: the next is written) so the global journal-op order is deterministic.
OPS = [
    ("cat-a", "a1", "john abram"),
    ("cat-b", "b1", "ellen smith"),
    ("cat-a", "a2", "john abram"),
    ("cat-b", "b2", "ellen smith"),
    ("cat-a", "a3", "abram street"),
    ("cat-b", "b3", "john smith"),
    ("cat-a", "a4", "john street"),
    ("cat-b", "b4", "ellen abram"),
]

SERVER_SCRIPT = """\
import asyncio
from repro.core import BlastConfig
from repro.serving import ReproServer, TenantRegistry

async def main():
    registry = TenantRegistry(
        {data_dir!r}, BlastConfig(purging_ratio=1.0, weighting="cbs")
    )
    server = ReproServer(registry, log_interval=None)
    await server.start()
    print(f"PORT={{server.port}}", flush=True)
    await server.serve_forever(install_signal_handlers=False)

asyncio.run(main())
"""


def spawn_server(data_dir: Path, faults: str | None) -> tuple:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    proc = subprocess.Popen(
        [sys.executable, "-c", SERVER_SCRIPT.format(data_dir=str(data_dir))],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()
    assert line.startswith("PORT="), (line, proc.stderr.read())
    return proc, int(line.strip().split("=", 1)[1])


def drive_until_death(port: int) -> int:
    """Send OPS sequentially; the count acked before the server died."""

    async def main() -> int:
        client = await ServingClient.connect("127.0.0.1", port)
        acked = 0
        try:
            for tenant, pid, text in OPS:
                await client.upsert(tenant, pid, [["name", text]])
                acked += 1
        except (ConnectionError, OSError):
            return acked
        finally:
            await client.close()
        raise AssertionError("server should have been killed mid-stream")

    return asyncio.run(main())


def oracle_states(ops) -> dict:
    """Per-tenant oracle state after *ops*, from sessions that never crash."""
    sessions: dict[str, StreamingSession] = {}
    for tenant, pid, text in ops:
        session = sessions.setdefault(
            tenant, StreamingSession(serving_config())
        )
        session.upsert(EntityProfile.from_dict(pid, {"name": text}))
    return {tenant: state_of(session) for tenant, session in sessions.items()}


def recovered_states(data_dir: Path) -> dict:
    async def main() -> dict:
        registry = TenantRegistry(data_dir, serving_config())
        states = {}
        for tenant_id in registry.known_tenants():
            tenant = await registry.get(tenant_id)
            assert tenant.metrics.recoveries == 1
            states[tenant_id] = state_of(tenant.session)
        await registry.close_all()
        return states

    return asyncio.run(main())


class TestKilledServer:
    def test_kill_mid_apply_recovers_the_journaled_op(self, tmp_path):
        # Die during the 5th journal *apply*: op 5 is journaled (durable)
        # but neither applied nor acked.  The journal is the truth — the
        # recovered state includes it.
        proc, port = spawn_server(tmp_path, "journal.apply=kill@5")
        acked = drive_until_death(port)
        assert proc.wait(timeout=30) == 23, proc.stderr.read()
        assert acked == 4  # the killed op's ack never arrived

        assert recovered_states(tmp_path) == oracle_states(OPS[:5])

    def test_kill_mid_append_loses_only_the_unjournaled_op(self, tmp_path):
        # Die during the 5th journal *append*: nothing of op 5 survives,
        # everything acked before it does.
        proc, port = spawn_server(tmp_path, "journal.append=kill@5")
        acked = drive_until_death(port)
        assert proc.wait(timeout=30) == 23, proc.stderr.read()
        assert acked == 4

        assert recovered_states(tmp_path) == oracle_states(OPS[:4])

    def test_acked_ops_always_survive_a_kill(self, tmp_path):
        # The client-visible durability contract, independent of where
        # exactly the fault fired: every acknowledged op is recovered.
        proc, port = spawn_server(tmp_path, "journal.append=kill@7")
        acked = drive_until_death(port)
        assert proc.wait(timeout=30) == 23, proc.stderr.read()

        recovered = recovered_states(tmp_path)
        assert recovered == oracle_states(OPS[:6])
        acked_oracle = oracle_states(OPS[:acked])
        for tenant_id, expected in acked_oracle.items():
            for pid in expected:
                assert pid in recovered[tenant_id]


class TestGracefulCli:
    def test_repro_serve_round_trip_and_drain(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=str(SRC))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--data-dir", str(tmp_path / "tenants"),
             "--port", "0", "--weighting", "cbs", "--log-interval", "600"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving on "), banner
            port = int(banner.split()[2].rsplit(":", 1)[1])

            async def main():
                client = await ServingClient.connect("127.0.0.1", port)
                await client.upsert("t1", "p1", [["name", "john abram"]])
                await client.upsert("t1", "p2", [["name", "john abram"]])
                # Default CLI config purges tiny blocks, so don't pin the
                # candidate list — the protocol round-trip is the point.
                found = await client.query("t1", "p1")
                assert isinstance(found, list)
                stats = await client.stats()
                assert stats["totals"]["upserts"] == 2
                await client.shutdown()
                await client.close()

            asyncio.run(main())
            assert proc.wait(timeout=30) == 0, proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        snapshot = tmp_path / "tenants" / "t1" / "snapshot.json.gz"
        assert snapshot.exists()
        restored = StreamingSession.restore(snapshot)
        assert restored.index.num_profiles == 2
