"""Tenant actors and the registry: batching, backpressure, LRU, recovery."""

from __future__ import annotations

import asyncio
import json

import pytest

from _serving_helpers import ROWS, serving_config, state_of

from repro.serving import (
    TenantClosedError,
    TenantOverloadedError,
    TenantRegistry,
)
from repro.serving.protocol import parse_request
from repro.serving.tenant import JOURNAL_NAME, SNAPSHOT_NAME


def upsert_request(tenant: str, pid: str, attributes: list):
    return parse_request(json.dumps(
        {"v": "upsert", "tenant": tenant, "id": pid, "attributes": attributes}
    ))


def delete_request(tenant: str, pid: str):
    return parse_request(json.dumps(
        {"v": "delete", "tenant": tenant, "id": pid}
    ))


async def fill(tenant, rows=ROWS) -> None:
    for pid, attributes in rows:
        await tenant.submit(upsert_request(tenant.tenant_id, pid, attributes))


class TestTenantActor:
    def test_writes_apply_in_order_and_queries_interleave(self, tmp_path):
        async def scenario():
            registry = TenantRegistry(tmp_path, serving_config())
            tenant = await registry.get("t1")
            await fill(tenant)
            result = await tenant.query("p1", 5, 0)
            assert [c.profile_id for c in result] == ["p2"]
            deleted = await tenant.submit(delete_request("t1", "p2"))
            assert deleted == {"op": "delete", "id": "p2", "applied": True}
            assert await tenant.query("p1", 5, 0) == []
            ghost = await tenant.submit(delete_request("t1", "ghost"))
            assert ghost["applied"] is False
            assert tenant.metrics.upserts == 4
            assert tenant.metrics.deletes == 2
            assert tenant.metrics.queries == 2
            await registry.close_all()

        asyncio.run(scenario())

    def test_full_queue_raises_overloaded(self, tmp_path):
        async def scenario():
            config = serving_config(serve_max_queue=4, serve_batch_size=1)
            registry = TenantRegistry(tmp_path, config)
            tenant = await registry.get("t1")
            futures = []
            async with tenant.lock:  # stall the writer mid-batch
                futures.append(tenant.submit(
                    upsert_request("t1", "p0", [["name", "x y"]])
                ))
                # Yield until the writer task holds p0 and waits on the lock.
                while tenant.queue_depth:
                    await asyncio.sleep(0)
                for i in range(4):
                    futures.append(tenant.submit(
                        upsert_request("t1", f"p{i + 1}", [["name", "x y"]])
                    ))
                with pytest.raises(TenantOverloadedError, match="back off"):
                    tenant.submit(
                        upsert_request("t1", "p9", [["name", "x y"]])
                    )
            results = await asyncio.gather(*futures)
            assert all(r["applied"] for r in results)
            assert tenant.metrics.overloads == 1
            assert tenant.session.index.num_profiles == 5
            await registry.close_all()

        asyncio.run(scenario())

    def test_pipelined_writes_batch(self, tmp_path):
        async def scenario():
            config = serving_config(serve_max_queue=64, serve_batch_size=16)
            registry = TenantRegistry(tmp_path, config)
            tenant = await registry.get("t1")
            async with tenant.lock:  # let the queue build before draining
                futures = [
                    tenant.submit(
                        upsert_request("t1", f"p{i}", [["name", "a b"]])
                    )
                    for i in range(20)
                ]
            await asyncio.gather(*futures)
            assert tenant.metrics.batched_ops == 20
            # 20 ops cannot have gone one-per-batch: the stalled queue
            # must have produced at least one multi-op batch.
            assert tenant.metrics.batches < 20
            await registry.close_all()

        asyncio.run(scenario())

    def test_snapshot_interval_snapshots_during_writes(self, tmp_path):
        async def scenario():
            config = serving_config(serve_snapshot_interval=2)
            registry = TenantRegistry(tmp_path, config)
            tenant = await registry.get("t1")
            await fill(tenant)
            await tenant.queue.join()
            assert tenant.metrics.snapshots >= 1
            assert registry.snapshot_path("t1").exists()
            await registry.close_all()

        asyncio.run(scenario())


class TestRegistry:
    def test_lazy_open_creates_layout_and_attaches_journal(self, tmp_path):
        async def scenario():
            registry = TenantRegistry(tmp_path, serving_config())
            tenant = await registry.get("t1")
            assert tenant.session.journal_path == tmp_path / "t1" / JOURNAL_NAME
            assert (tmp_path / "t1").is_dir()
            assert registry.known_tenants() == ["t1"]
            assert await registry.get("t1") is tenant
            await registry.close_all()

        asyncio.run(scenario())

    def test_concurrent_first_touch_opens_once(self, tmp_path):
        async def scenario():
            registry = TenantRegistry(tmp_path, serving_config())
            first, second = await asyncio.gather(
                registry.get("t1"), registry.get("t1")
            )
            assert first is second
            await registry.close_all()

        asyncio.run(scenario())

    def test_lru_eviction_snapshots_and_reattach_recovers(self, tmp_path):
        async def scenario():
            config = serving_config(serve_resident_tenants=2)
            registry = TenantRegistry(tmp_path, config)
            t1 = await registry.get("t1")
            await fill(t1)
            expected = state_of(t1.session)
            await registry.get("t2")
            assert registry.resident == ["t1", "t2"]
            await registry.get("t3")  # evicts t1, the least recently used
            assert registry.resident == ["t2", "t3"]
            assert registry.server_metrics.evictions == 1
            assert registry.snapshot_path("t1").exists()
            # Reattach: state identical, counters carried over.
            t1_again = await registry.get("t1")
            assert t1_again is not t1
            assert state_of(t1_again.session) == expected
            assert t1_again.metrics.upserts == 4
            assert t1_again.metrics.recoveries == 1
            await registry.close_all()

        asyncio.run(scenario())

    def test_touch_refreshes_lru_order(self, tmp_path):
        async def scenario():
            config = serving_config(serve_resident_tenants=2)
            registry = TenantRegistry(tmp_path, config)
            await registry.get("t1")
            await registry.get("t2")
            await registry.get("t1")  # t2 is now the LRU
            await registry.get("t3")
            assert registry.resident == ["t1", "t3"]
            await registry.close_all()

        asyncio.run(scenario())

    def test_close_all_refuses_new_tenants(self, tmp_path):
        async def scenario():
            registry = TenantRegistry(tmp_path, serving_config())
            tenant = await registry.get("t1")
            await fill(tenant)
            await registry.close_all()
            assert registry.snapshot_path("t1").exists()
            with pytest.raises(TenantClosedError, match="shutting down"):
                await registry.get("t1")
            with pytest.raises(TenantClosedError, match="draining"):
                tenant.submit(delete_request("t1", "p1"))

        asyncio.run(scenario())

    def test_crash_close_recovers_from_journal_alone(self, tmp_path):
        async def scenario():
            registry = TenantRegistry(tmp_path, serving_config())
            tenant = await registry.get("t1")
            await fill(tenant)
            expected = state_of(tenant.session)
            await registry.close_all(snapshot=False)  # crash-like
            assert not registry.snapshot_path("t1").exists()
            assert registry.journal_path("t1").stat().st_size > 0

            fresh = TenantRegistry(tmp_path, serving_config())
            recovered = await fresh.get("t1")
            assert state_of(recovered.session) == expected
            assert recovered.metrics.recoveries == 1
            await fresh.close_all()

        asyncio.run(scenario())

    def test_session_factory_shapes_fresh_tenants(self, tmp_path):
        async def scenario():
            from repro.streaming import StreamingSession

            config = serving_config()
            made = []

            def factory() -> StreamingSession:
                session = StreamingSession(config, clean_clean=True)
                made.append(session)
                return session

            registry = TenantRegistry(
                tmp_path, config, session_factory=factory
            )
            tenant = await registry.get("t1")
            assert made == [tenant.session]
            await registry.close_all()

        asyncio.run(scenario())

    def test_apply_errors_resolve_the_future_not_the_actor(self, tmp_path):
        async def scenario():
            registry = TenantRegistry(tmp_path, serving_config())
            tenant = await registry.get("t1")
            real_upsert = tenant.session.upsert
            failures = iter([RuntimeError("boom")])

            def flaky_upsert(profile, source=0):
                error = next(failures, None)
                if error is not None:
                    raise error
                return real_upsert(profile, source)

            tenant.session.upsert = flaky_upsert
            with pytest.raises(RuntimeError, match="boom"):
                await tenant.submit(
                    upsert_request("t1", "p1", [["name", "x y"]])
                )
            # The actor survives and keeps applying later writes.
            result = await tenant.submit(
                upsert_request("t1", "p2", [["name", "x y"]])
            )
            assert result["applied"] is True
            await registry.close_all()

        asyncio.run(scenario())

    def test_stats_roll_up(self, tmp_path):
        async def scenario():
            registry = TenantRegistry(tmp_path, serving_config())
            t1 = await registry.get("t1")
            await fill(t1)
            await t1.query("p1", 5, 0)
            stats = registry.stats()
            assert stats["totals"]["upserts"] == 4
            assert stats["totals"]["queries"] == 1
            assert stats["totals"]["tenants_resident"] == 1
            assert "t1" in stats["tenants"]
            scoped = registry.stats("t1")
            assert scoped["t1"]["upserts"] == 4
            assert registry.stats("ghost") == {"ghost": {}}
            await registry.close_all()

        asyncio.run(scenario())

    def test_snapshot_name_constant_matches_layout(self, tmp_path):
        registry = TenantRegistry(tmp_path, serving_config())
        assert registry.snapshot_path("x").name == SNAPSHOT_NAME
        assert registry.journal_path("x").name == JOURNAL_NAME
