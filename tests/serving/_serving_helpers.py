"""Shared helpers for the serving-layer suite.

The serving tests run real asyncio event loops (via ``asyncio.run`` —
the suite has no async plugin dependency) and, where the contract is
about crashes, real killed subprocesses.  Sessions use the same small
``cbs``/``purging_ratio=1.0`` configuration as the reliability suite so
tiny datasets retain candidates.
"""

from __future__ import annotations

from repro.core import BlastConfig
from repro.streaming import StreamingSession

#: Profiles that retain candidates under cbs weighting: matching pairs
#: share name tokens, the odd one out shares none.
ROWS = [
    ("p1", [["name", "john abram"], ["city", "boston"]]),
    ("p2", [["name", "john abram"], ["city", "boston"]]),
    ("p3", [["name", "ellen smith"], ["city", "denver"]]),
    ("p4", [["name", "ellen smith"], ["city", "denver"]]),
]


def serving_config(**overrides) -> BlastConfig:
    settings = {"purging_ratio": 1.0, "weighting": "cbs"}
    settings.update(overrides)
    return BlastConfig(**settings)


def state_of(session: StreamingSession) -> dict:
    """Every live profile's full weighted neighborhood (the oracle view)."""
    index = session.index
    return {
        index.profile_of(node).profile_id: [
            (c.profile_id, c.weight)
            for c in session.neighborhood(index.profile_of(node).profile_id)
        ]
        for node in index.live_nodes()
    }
