"""Wire protocol: parsing, validation, encoding, correlation."""

from __future__ import annotations

import json

import pytest

from repro.serving.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_request,
    validate_tenant_id,
)


class TestParseRequest:
    def test_upsert_builds_a_profile(self):
        request = parse_request(
            '{"v": "upsert", "tenant": "t1", "id": "p1",'
            ' "attributes": [["name", "john"]], "source": 1}'
        )
        assert request.verb == "upsert"
        assert request.tenant == "t1"
        assert request.profile_id == "p1"
        assert request.source == 1
        assert request.profile.attributes == (("name", "john"),)

    def test_delete_and_query(self):
        delete = parse_request('{"v": "delete", "tenant": "t1", "id": "p1"}')
        assert (delete.verb, delete.profile_id) == ("delete", "p1")
        query = parse_request(
            '{"v": "query", "tenant": "t1", "id": "p1", "k": 3}'
        )
        assert (query.verb, query.k) == ("query", 3)

    def test_req_token_is_carried(self):
        request = parse_request('{"v": "ping", "req": 17}')
        assert request.req == 17

    def test_bytes_and_str_are_equivalent(self):
        raw = '{"v": "stats"}'
        assert parse_request(raw) == parse_request(raw.encode())

    @pytest.mark.parametrize(
        "line, match",
        [
            ("not json", "not valid JSON"),
            ('["list"]', "JSON object"),
            ('{"v": "explode"}', "unknown verb"),
            ('{"v": "upsert", "tenant": "t1"}', "bad upsert payload"),
            ('{"v": "query", "tenant": "t1"}', "non-empty string 'id'"),
            ('{"v": "query", "tenant": "t1", "id": ""}', "non-empty"),
            ('{"v": "query", "tenant": "t1", "id": "p", "k": 0}', "positive"),
            ('{"v": "query", "tenant": "t1", "id": "p", "source": 7}',
             "source must be 0 or 1"),
            ('{"v": "delete", "id": "p"}', "invalid tenant id"),
            ('{"v": "upsert", "tenant": "../../etc", "id": "p",'
             ' "attributes": []}', "invalid tenant id"),
        ],
    )
    def test_defects_raise_bad_request(self, line, match):
        with pytest.raises(ProtocolError, match=match) as excinfo:
            parse_request(line)
        assert excinfo.value.code == "bad_request"

    def test_oversize_line_is_rejected_before_decoding(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_request(b"x" * (MAX_LINE_BYTES + 1))

    def test_invalid_utf8_is_rejected(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            parse_request(b'{"v": "ping"\xff}')


class TestTenantIds:
    @pytest.mark.parametrize("tenant", ["a", "catalog-a", "T.9_x", "0" * 64])
    def test_valid(self, tenant):
        assert validate_tenant_id(tenant) == tenant

    @pytest.mark.parametrize(
        "tenant", ["", ".hidden", "-x", "a/b", "a b", "0" * 65, None, 7]
    )
    def test_invalid(self, tenant):
        with pytest.raises(ProtocolError):
            validate_tenant_id(tenant)


class TestResponses:
    def test_ok_echoes_correlation_token(self):
        request = parse_request('{"v": "ping", "req": "abc"}')
        assert ok_response(request, pong=True) == {
            "ok": True,
            "pong": True,
            "req": "abc",
        }

    def test_error_requires_known_code(self):
        with pytest.raises(ValueError, match="unknown protocol error code"):
            error_response("nope", "boom")
        for code in ERROR_CODES:
            assert error_response(code, "boom")["error"] == code

    def test_encode_round_trips_as_one_line(self):
        payload = encode(ok_response(None, value="café"))
        assert payload.endswith(b"\n")
        assert payload.count(b"\n") == 1
        assert json.loads(payload) == {"ok": True, "value": "café"}
