"""Table 6: LMI run time as the LSH threshold varies.

The paper runs LMI on dbp's 30k x 50k attribute space: 12.5h exhaustively,
0.7-1.9h with LSH depending on the threshold.  Here the wide-schema dbp
variant (hundreds of attributes) exhibits the same shape: exhaustive LMI is
the ceiling, and higher LSH thresholds admit fewer candidate pairs and run
faster.
"""

from harness import write_result

from repro.datasets.benchmarks import load_dbp_wide
from repro.lsh import lsh_candidate_pairs
from repro.schema.attribute_profile import build_attribute_profiles
from repro.schema.lmi import LooseAttributeMatchInduction
from repro.utils.timer import Timer

THRESHOLDS = (0.10, 0.22, 0.32, 0.41, 0.55, 0.64)


def test_table6_lmi_time_vs_threshold(benchmark):
    def run():
        dataset = load_dbp_wide(num_rare=550, scale=1.0)
        profiles1 = build_attribute_profiles(dataset.collection1, 0)
        profiles2 = build_attribute_profiles(dataset.collection2, 1)
        lmi = LooseAttributeMatchInduction()

        rows = []
        with Timer() as exhaustive:
            exact = lmi.induce(profiles1, profiles2)
        total_pairs = len(profiles1) * len(profiles2)
        rows.append(
            f"{'exhaustive':>12}: {exhaustive.elapsed:6.2f}s "
            f"({total_pairs:,} pairs scored, "
            f"{exact.num_clusters} clusters)"
        )
        for threshold in THRESHOLDS:
            with Timer() as timer:
                candidates = lsh_candidate_pairs(
                    profiles1, profiles2, threshold=threshold,
                    num_hashes=150, seed=42,
                )
                part = lmi.induce(profiles1, profiles2, candidates)
            rows.append(
                f"{'LSH.' + format(threshold, '.2f')[2:]:>12}: "
                f"{timer.elapsed:6.2f}s ({len(candidates):,} pairs scored, "
                f"{part.num_clusters} clusters)"
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    write_result(
        "table6_lsh_time",
        "Table 6 - LMI run time vs LSH threshold (wide dbp)\n"
        + "\n".join(rows),
    )
