"""Figure 5: the LSH S-curve for r=5, b=30 with its estimated threshold."""

from harness import write_result

from repro.lsh import estimated_threshold, scurve_points

ROWS, BANDS = 5, 30


def test_fig5_scurve(benchmark):
    def build():
        similarities, probabilities = scurve_points(ROWS, BANDS, num=21)
        threshold = estimated_threshold(ROWS, BANDS)
        lines = [f"Figure 5 - S-curve for r={ROWS}, b={BANDS} "
                 f"(estimated threshold {threshold:.3f})"]
        for s, p in zip(similarities, probabilities):
            bar = "#" * round(p * 40)
            marker = " <- threshold" if abs(s - threshold) < 0.025 else ""
            lines.append(f"  s={s:4.2f}  P={p:6.4f} |{bar:<40}|{marker}")
        return lines

    lines = benchmark.pedantic(build, iterations=1, rounds=1)
    write_result("fig5_scurve", "\n".join(lines))

    # Shape assertions: monotone, with the inflection near the threshold.
    similarities, probabilities = scurve_points(ROWS, BANDS, num=101)
    assert probabilities[0] == 0.0
    assert probabilities[-1] > 0.999
    assert all(b >= a for a, b in zip(probabilities, probabilities[1:]))
