"""Table 3: block-collection characteristics.

For every dataset pair and both blocking modes — Token Blocking alone ("T")
and with LMI ("L") — reports PC, PQ and ||B|| of the baseline (purged)
collection and of the collection after Block Filtering, mirroring the
paper's baseline / after-block-filtering halves.
"""

from harness import clean_dataset, partitioning_of, write_result

from repro.blocking import (
    LooselySchemaAwareBlocking,
    TokenBlocking,
    block_filtering,
    block_purging,
)
from repro.metrics import evaluate_blocks

DATASETS = ("ar1", "ar2", "prd", "mov", "dbp")


def _row(label: str, dataset, blocks) -> str:
    purged = block_purging(blocks, dataset.num_profiles)
    filtered = block_filtering(purged)
    q0 = evaluate_blocks(purged, dataset)
    q1 = evaluate_blocks(filtered, dataset)
    return (
        f"{label:>6}  baseline: PC={q0.pair_completeness:7.2%} "
        f"PQ={q0.pair_quality:9.4%} ||B||={q0.comparisons:10.3g}   "
        f"after filtering: PC={q1.pair_completeness:7.2%} "
        f"PQ={q1.pair_quality:9.4%} ||B||={q1.comparisons:10.3g}"
    )


def test_table3_block_collections(benchmark):
    def build_rows():
        rows = []
        for name in DATASETS:
            dataset = clean_dataset(name)
            token = TokenBlocking().build(dataset)
            rows.append(_row(f"{name} T", dataset, token))
            aware = LooselySchemaAwareBlocking(
                partitioning_of(name)
            ).build(dataset)
            rows.append(_row(f"{name} L", dataset, aware))
        return rows

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    write_result(
        "table3_blocking",
        "Table 3 - block collections (T = Token Blocking, L = with LMI)\n"
        + "\n".join(rows),
    )


def test_table3_token_blocking_speed(benchmark):
    """Timed micro-bench: Token Blocking on the ar1 pair."""
    dataset = clean_dataset("ar1")
    blocks = benchmark(lambda: TokenBlocking().build(dataset))
    assert len(blocks) > 0
