"""Figure 8: contribution of each BLAST meta-blocking component.

For every dataset (inputs are the LMI block collections, as in the paper):

* ``wnp`` — classical WNP, the average of wnp1 and wnp2 over the five
  traditional weighting schemes;
* ``chi`` — BLAST with the aggregate entropy switched off (pure
  chi-squared weighting);
* ``wsh`` — BLAST's pruning over traditional weighting schemes adapted to
  use the aggregate entropy (averaged over the five schemes);
* ``bch`` — full BLAST (chi-squared x entropy).
"""

from harness import (
    blocks_L,
    chi_h_mb_row,
    clean_dataset,
    partitioning_of,
    traditional_mb_row,
    write_result,
)

from repro.blocking.schema_aware import make_key_entropy
from repro.core import MetaBlockingStage, PipelineContext
from repro.graph import BlockingGraph, WeightingScheme, compute_weights
from repro.graph.metablocking import blocks_from_edges
from repro.graph.pruning import BlastPruning, WeightNodePruning
from repro.metrics import evaluate_blocks

DATASETS = ("ar1", "ar2", "prd", "mov", "dbp")


def _ablation_quality(name: str, stage: MetaBlockingStage):
    """PC/PQ of one meta-blocking ablation applied to the LMI blocks."""
    dataset = clean_dataset(name)
    context = PipelineContext(
        dataset, partitioning=partitioning_of(name), blocks=blocks_L(name)
    )
    stage.apply(context)
    quality = evaluate_blocks(context.blocks, dataset)
    return quality.pair_completeness, quality.pair_quality


def _wsh_quality(name: str):
    """BLAST pruning over entropy-boosted traditional weighting schemes.

    Equivalent to applying ``MetaBlockingStage(weighting=scheme,
    entropy_boost=True)`` per scheme, but shares one blocking graph across
    all five schemes — the graph is the expensive part of this sweep.
    """
    dataset = clean_dataset(name)
    collection = blocks_L(name)
    graph = BlockingGraph(
        collection, key_entropy=make_key_entropy(partitioning_of(name))
    )
    pcs, pqs = [], []
    for scheme in WeightingScheme.traditional():
        weights = compute_weights(graph, scheme, entropy_boost=True)
        retained = BlastPruning().prune(graph, weights)
        quality = evaluate_blocks(
            blocks_from_edges(retained, collection.is_clean_clean), dataset
        )
        pcs.append(quality.pair_completeness)
        pqs.append(quality.pair_quality)
    return sum(pcs) / len(pcs), sum(pqs) / len(pqs)


def _chi_quality(name: str):
    """BLAST without the entropy factor (the `chi` configuration)."""
    return _ablation_quality(name, MetaBlockingStage(use_entropy=False))


def test_fig8_component_contributions(benchmark):
    def build_rows():
        rows = ["Figure 8 - PC / PQ per configuration (inputs: LMI blocking)",
                f"{'dataset':>8} {'':>6} {'wnp':>10} {'chi':>10} "
                f"{'wsh':>10} {'bch':>10}"]
        for name in DATASETS:
            dataset = clean_dataset(name)
            collection = blocks_L(name)
            part = partitioning_of(name)

            wnp1 = traditional_mb_row("w1", collection, dataset,
                                      lambda: WeightNodePruning(False))
            wnp2 = traditional_mb_row("w2", collection, dataset,
                                      lambda: WeightNodePruning(True))
            wnp_pc = (wnp1.quality.pair_completeness
                      + wnp2.quality.pair_completeness) / 2
            wnp_pq = (wnp1.quality.pair_quality
                      + wnp2.quality.pair_quality) / 2
            chi_pc, chi_pq = _chi_quality(name)
            wsh_pc, wsh_pq = _wsh_quality(name)
            bch = chi_h_mb_row("bch", collection, dataset, BlastPruning(), part)
            rows.append(
                f"{name:>8} {'PC':>6} {wnp_pc:10.2%} {chi_pc:10.2%} "
                f"{wsh_pc:10.2%} {bch.quality.pair_completeness:10.2%}")
            rows.append(
                f"{'':>8} {'PQ':>6} {wnp_pq:10.4%} {chi_pq:10.4%} "
                f"{wsh_pq:10.4%} {bch.quality.pair_quality:10.4%}")
        return rows

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    write_result("fig8_components", "\n".join(rows))
