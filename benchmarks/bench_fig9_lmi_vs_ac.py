"""Figure 9: LMI vs Attribute Clustering as BLAST's induction step.

PC of BLAST with each induction technique, and dPQ = (PQ_LMI - PQ_AC) /
PQ_AC.  The paper finds identical results on large datasets and up to
+9.8% PQ for LMI on small ones.
"""

from harness import blast_row, clean_dataset, write_result

from repro.core import BlastConfig

DATASETS = ("ar1", "ar2", "prd", "mov", "dbp")


def test_fig9_lmi_vs_ac(benchmark):
    def build_rows():
        rows = ["Figure 9 - Blast with LMI vs Blast with AC",
                f"{'dataset':>8} {'PC(LMI)':>9} {'PC(AC)':>9} {'dPQ':>8}"]
        for name in DATASETS:
            dataset = clean_dataset(name)
            lmi = blast_row("lmi", dataset, BlastConfig(induction="lmi"))
            ac = blast_row("ac", dataset, BlastConfig(induction="ac"))
            pq_l = lmi.quality.pair_quality
            pq_a = ac.quality.pair_quality
            delta = (pq_l - pq_a) / pq_a if pq_a else float("inf")
            rows.append(
                f"{name:>8} {lmi.quality.pair_completeness:9.2%} "
                f"{ac.quality.pair_completeness:9.2%} {delta:8.1%}")
        return rows

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    write_result("fig9_lmi_vs_ac", "\n".join(rows))
