"""Table 2: dataset characteristics.

Regenerates the |E|, |A|, nvp and |D_E| columns for the five clean-clean
pairs (at this repo's default scale; the paper-scale parameters are in
``repro.datasets.benchmarks.PAPER_SCALE``).
"""

from harness import clean_dataset, write_result

from repro.datasets import dataset_characteristics, load_clean_clean
from repro.datasets.benchmarks import CLEAN_CLEAN_DATASETS, PAPER_SCALE


def test_table2_characteristics(benchmark):
    def build_rows():
        rows = []
        for name in CLEAN_CLEAN_DATASETS:
            stats = dataset_characteristics(clean_dataset(name))
            paper = PAPER_SCALE[name]
            rows.append(
                f"{name:>4}  |E|={stats.size1:>6}-{stats.size2:>7} "
                f"|A|={stats.attributes1:>5}-{stats.attributes2:>5} "
                f"nvp={stats.nvp1 + stats.nvp2:>9,} "
                f"|D_E|={stats.duplicates:>6,}   "
                f"(paper: {paper['size1']:,}-{paper['size2']:,}, "
                f"dup {paper['matches']:,})"
            )
        return rows

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    write_result("table2_datasets", "Table 2 - dataset characteristics\n" +
                 "\n".join(rows))


def test_table2_generation_speed(benchmark):
    """Timed micro-bench: generating the ar1 pair from scratch."""
    dataset = benchmark(lambda: load_clean_clean("ar1", seed=1))
    assert dataset.num_duplicates > 0
