"""Benchmark suite configuration.

Every bench writes its table to ``benchmarks/results/<id>.txt`` and prints
it (visible with ``pytest benchmarks/ --benchmark-only -s``).  Heavy
artifacts (datasets, partitionings, prepared block collections) are cached
in session-scoped fixtures shared across benches.
"""
