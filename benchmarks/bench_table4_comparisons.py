"""Table 4 (a-d): BLAST vs traditional and supervised meta-blocking.

For each of ar1, ar2, prd, mov:

* wnp1/wnp2/cnp1/cnp2 on Token Blocking ("T") and LMI blocking ("L"),
  each averaged over the five traditional weighting schemes;
* cnp1/cnp2 with BLAST's chi-squared x entropy weighting ("L chi2h");
* supervised meta-blocking (SVM over edge features, 10% training);
* BLAST.

Plus the Section 4.1 sanity check: BLAST meta-blocking over manually
aligned Standard Blocking equals BLAST over LMI on fully mappable data.
"""

from harness import (
    BenchRow,
    blast_row,
    blocks_L,
    blocks_T,
    chi_h_mb_row,
    clean_dataset,
    lmi_overhead,
    partitioning_of,
    supervised_row,
    traditional_mb_row,
    write_result,
)

from repro.graph.pruning import CardinalityNodePruning, WeightNodePruning

DATASETS = ("ar1", "ar2", "prd", "mov")


def _table_for(name: str) -> list[BenchRow]:
    dataset = clean_dataset(name)
    T = blocks_T(name)
    L = blocks_L(name)
    part = partitioning_of(name)
    lmi_cost = lmi_overhead(name)

    rows: list[BenchRow] = []
    for label, reciprocal in (("wnp1", False), ("wnp2", True)):
        rows.append(traditional_mb_row(
            f"{label} T", T, dataset, lambda r=reciprocal: WeightNodePruning(r)))
        rows.append(traditional_mb_row(
            f"{label} L", L, dataset, lambda r=reciprocal: WeightNodePruning(r),
            extra_overhead=lmi_cost))
    for label, reciprocal in (("cnp1", False), ("cnp2", True)):
        rows.append(traditional_mb_row(
            f"{label} T", T, dataset,
            lambda r=reciprocal: CardinalityNodePruning(r)))
        rows.append(traditional_mb_row(
            f"{label} L", L, dataset,
            lambda r=reciprocal: CardinalityNodePruning(r),
            extra_overhead=lmi_cost))
        rows.append(chi_h_mb_row(
            f"{label} L chi2h", L, dataset,
            CardinalityNodePruning(reciprocal), part,
            extra_overhead=lmi_cost))
    rows.append(supervised_row("sup. MB", T, dataset))
    rows.append(blast_row("Blast", dataset))
    return rows


def _render(name: str, rows: list[BenchRow]) -> str:
    return f"Table 4 ({name})\n" + "\n".join(r.formatted() for r in rows)


def test_table4a_ar1(benchmark):
    rows = benchmark.pedantic(lambda: _table_for("ar1"), iterations=1, rounds=1)
    write_result("table4a_ar1", _render("ar1", rows))


def test_table4b_ar2(benchmark):
    rows = benchmark.pedantic(lambda: _table_for("ar2"), iterations=1, rounds=1)
    write_result("table4b_ar2", _render("ar2", rows))


def test_table4c_prd(benchmark):
    rows = benchmark.pedantic(lambda: _table_for("prd"), iterations=1, rounds=1)
    write_result("table4c_prd", _render("prd", rows))


def test_table4d_mov(benchmark):
    rows = benchmark.pedantic(lambda: _table_for("mov"), iterations=1, rounds=1)
    write_result("table4d_mov", _render("mov", rows))


def test_table4_standard_blocking_equivalence(benchmark):
    """Section 4.1: on fully mappable data, BLAST over manual alignment
    (Standard Blocking, token mode) matches BLAST over LMI."""
    from repro.blocking import StandardBlocking, block_filtering, block_purging
    from repro.graph import MetaBlocker
    from repro.metrics import evaluate_blocks

    def run():
        dataset = clean_dataset("ar1")
        blast = blast_row("Blast(LMI)", dataset)
        alignment = {"title": "paper title", "authors": "author list",
                     "venue": "publication venue", "year": "yr"}
        manual = StandardBlocking(alignment, key_mode="token").build(dataset)
        manual = block_filtering(block_purging(manual, dataset.num_profiles))
        manual_quality = evaluate_blocks(MetaBlocker().run(manual), dataset)
        return blast, manual_quality

    blast, manual_quality = benchmark.pedantic(run, iterations=1, rounds=1)
    write_result(
        "table4_standard_equivalence",
        "Section 4.1 - Blast vs schema-based Standard Blocking (ar1)\n"
        f"{blast.formatted()}\n"
        f"{'std+BlastMB':>16} PC={manual_quality.pair_completeness:7.2%} "
        f"PQ={manual_quality.pair_quality:9.4%} F1={manual_quality.f1:6.3f}",
    )
