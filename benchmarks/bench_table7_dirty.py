"""Table 7 (a-c): dirty ER on census, cora and cddb.

BLAST (adapted to dirty ER, Section 4.5) against wnp1/wnp2/cnp1/cnp2 — all
techniques applied in combination with LMI, as in the paper.
"""

from harness import (
    BenchRow,
    blast_row,
    blocks_L,
    dirty_dataset,
    lmi_overhead,
    traditional_mb_row,
    write_result,
)

from repro.graph.pruning import CardinalityNodePruning, WeightNodePruning


def _table_for(name: str) -> list[str]:
    dataset = dirty_dataset(name)
    L = blocks_L(name, dirty=True)
    lmi_cost = lmi_overhead(name, dirty=True)

    rows: list[BenchRow] = [blast_row("Blast", dataset)]
    rows.append(traditional_mb_row(
        "wnp1 L", L, dataset, lambda: WeightNodePruning(False),
        extra_overhead=lmi_cost))
    rows.append(traditional_mb_row(
        "wnp2 L", L, dataset, lambda: WeightNodePruning(True),
        extra_overhead=lmi_cost))
    rows.append(traditional_mb_row(
        "cnp1 L", L, dataset, lambda: CardinalityNodePruning(False),
        extra_overhead=lmi_cost))
    rows.append(traditional_mb_row(
        "cnp2 L", L, dataset, lambda: CardinalityNodePruning(True),
        extra_overhead=lmi_cost))

    from repro.core import Blast

    part = Blast().extract_loose_schema(dataset)
    clusters = part.num_clusters - (1 if part.has_glue else 0)
    attributes = len(dataset.collection1.attribute_names)
    header = (
        f"Table 7 ({name}): {dataset.num_profiles} profiles, "
        f"{dataset.num_duplicates:,} matches, {attributes} attributes, "
        f"{clusters} clusters with LMI"
    )
    return [header] + [r.formatted() for r in rows]


def test_table7a_census(benchmark):
    rows = benchmark.pedantic(lambda: _table_for("census"),
                              iterations=1, rounds=1)
    write_result("table7a_census", "\n".join(rows))


def test_table7b_cora(benchmark):
    rows = benchmark.pedantic(lambda: _table_for("cora"),
                              iterations=1, rounds=1)
    write_result("table7b_cora", "\n".join(rows))


def test_table7c_cddb(benchmark):
    rows = benchmark.pedantic(lambda: _table_for("cddb"),
                              iterations=1, rounds=1)
    write_result("table7c_cddb", "\n".join(rows))
