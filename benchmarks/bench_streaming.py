#!/usr/bin/env python
"""Streaming benchmark: arrival-time queries over a generated stream.

Generates a synthetic clean-clean workload (~10k profiles by default),
replays it through a :class:`repro.streaming.StreamingSession` — upsert
followed by an arrival-time ``candidates()`` query per profile — and
records sustained throughput (queries/sec) plus per-query latency
percentiles (p50/p95/p99) for the ``fast`` serving view.  A second pass
measures bulk-load throughput (upserts only) and the snapshot write/
restore round trip.

Results are written as JSON (default: ``BENCH_streaming.json`` at the
repository root), so serving latency is a recorded, regression-checkable
artifact::

    PYTHONPATH=src python benchmarks/bench_streaming.py            # full run
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke    # CI-sized

Not a pytest module — run it as a script (like ``bench_scaling.py``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import BlastConfig  # noqa: E402
from repro.datasets import load_clean_clean  # noqa: E402
from repro.experiments.runutils import (  # noqa: E402
    json_envelope,
    percentiles_ms,
    scale_for_profiles,
    write_json_report,
)
from repro.streaming import StreamingSession  # noqa: E402


def build_stream(profiles: int, seed: int):
    """Arrival-ordered ``(profile, source)`` records of a generated task."""
    scale = scale_for_profiles("ar1", profiles)
    dataset = load_clean_clean("ar1", scale=scale, seed=seed)
    return [
        (profile, dataset.source_of(gidx))
        for gidx, profile in dataset.iter_profiles()
    ], dataset.num_profiles


def replay_with_latencies(
    session: StreamingSession, records, query_k: int | None
) -> tuple[np.ndarray, int]:
    """Upsert + query every record; per-query seconds and link count."""
    latencies = np.zeros(len(records), dtype=np.float64)
    links = 0
    for position, (profile, source) in enumerate(records):
        session.upsert(profile, source=source)
        start = time.perf_counter()
        candidates = session.candidates(
            profile.profile_id, k=query_k, source=source
        )
        latencies[position] = time.perf_counter() - start
        links += len(candidates)
    return latencies, links


def run(args: argparse.Namespace) -> dict:
    profiles = 1_500 if args.smoke else args.profiles
    print(f"building stream (~{profiles} profiles, seed={args.seed}) ...")
    records, num_profiles = build_stream(profiles, args.seed)
    config = BlastConfig(
        weighting=args.weighting,
        stream_consistency=args.consistency,
        stream_query_k=args.query_k,
    )

    # Pass 1: bulk load (index mutation throughput, no queries).
    session = StreamingSession(config, clean_clean=True)
    start = time.perf_counter()
    for profile, source in records:
        session.upsert(profile, source=source)
    load_seconds = time.perf_counter() - start

    # Snapshot round trip on the warmed index.
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "session.json.gz"
        start = time.perf_counter()
        session.snapshot(snapshot_path)
        snapshot_seconds = time.perf_counter() - start
        snapshot_bytes = snapshot_path.stat().st_size
        start = time.perf_counter()
        StreamingSession.restore(snapshot_path)
        restore_seconds = time.perf_counter() - start

    # Pass 2: arrival-time replay (upsert + query per record).
    session = StreamingSession(config, clean_clean=True)
    start = time.perf_counter()
    latencies, links = replay_with_latencies(session, records, args.query_k)
    replay_seconds = time.perf_counter() - start

    latency_ms = percentiles_ms(latencies * 1e3)
    p50, p95, p99 = latency_ms["p50"], latency_ms["p95"], latency_ms["p99"]
    qps = len(records) / replay_seconds if replay_seconds > 0 else float("inf")
    report = json_envelope(
        "streaming_arrival_time_queries",
        "ar1-synthetic/interleaved-upsert-query",
        smoke=bool(args.smoke),
        profiles=num_profiles,
        keys=session.index.num_blocks,
        consistency=args.consistency,
        weighting=args.weighting,
        query_k=args.query_k,
        seed=args.seed,
        candidate_links=links,
        replay_seconds=round(replay_seconds, 4),
        queries_per_second=round(qps, 1),
        latency_ms=latency_ms,
        bulk_load_seconds=round(load_seconds, 4),
        bulk_upserts_per_second=round(
            len(records) / load_seconds if load_seconds > 0 else float("inf"),
            1,
        ),
        snapshot={
            "bytes": snapshot_bytes,
            "write_seconds": round(snapshot_seconds, 4),
            "restore_seconds": round(restore_seconds, 4),
        },
    )
    print(
        f"  {len(records)} arrivals in {replay_seconds:.2f}s "
        f"({qps:,.0f} queries/s) — p50 {p50:.2f}ms, p95 {p95:.2f}ms, "
        f"p99 {p99:.2f}ms, {links} links"
    )
    print(
        f"  bulk load {load_seconds:.2f}s, snapshot "
        f"{snapshot_bytes / 1024:.0f} KiB "
        f"(write {snapshot_seconds:.2f}s, restore {restore_seconds:.2f}s)"
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profiles", type=int, default=10_000,
                        help="approximate stream size (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized stream (~1.5k profiles)")
    parser.add_argument("--weighting", default="chi_h",
                        help="weighting scheme (default: %(default)s)")
    parser.add_argument("--consistency", default="fast",
                        help="query view for the replay (default: %(default)s)")
    parser.add_argument("--query-k", type=int, default=10,
                        help="per-query candidate cap (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_streaming.json",
                        help="JSON report path (default: %(default)s)")
    parser.add_argument("--max-p95-ms", type=float, default=None,
                        help="exit non-zero if the p95 latency is higher")
    args = parser.parse_args(argv)

    report = run(args)
    write_json_report(args.output, report)
    print(f"wrote {args.output}")

    if (
        args.max_p95_ms is not None
        and report["latency_ms"]["p95"] > args.max_p95_ms
    ):
        print(
            f"error: p95 latency {report['latency_ms']['p95']}ms above the "
            f"{args.max_p95_ms}ms ceiling",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
