"""Figure 10: PC under LSH-LMI with the glue cluster disabled.

Without the glue cluster, tokens of unclustered attributes are dropped.
Low LSH thresholds keep all similar attribute pairs as candidates and PC is
unaffected; past a critical threshold LMI misses similar attributes and PC
degrades — the paper's safety argument for conservative thresholds.

Several (rows, bands) configurations are swept, like the figure's legend.
"""

from harness import write_result

from repro.blocking import LooselySchemaAwareBlocking, block_purging
from repro.datasets.benchmarks import load_dbp_wide
from repro.lsh import LSHBanding, lsh_candidate_pairs
from repro.metrics import evaluate_blocks
from repro.schema.attribute_profile import build_attribute_profiles
from repro.schema.lmi import LooseAttributeMatchInduction

# (rows, bands) pairs: thresholds (1/b)^(1/r) ~ .10 / .26 / .51 / .71 /
# .79 / .93 — the last two are past the similarity of the noisy core
# attributes, where LMI must start missing clusters and PC must degrade.
CONFIGS = ((2, 100), (3, 60), (5, 30), (8, 15), (10, 10), (25, 6))


def test_fig10_pc_vs_lsh_threshold(benchmark):
    def build_rows():
        dataset = load_dbp_wide(num_rare=200, scale=0.5)
        profiles1 = build_attribute_profiles(dataset.collection1, 0)
        profiles2 = build_attribute_profiles(dataset.collection2, 1)
        lmi = LooseAttributeMatchInduction(glue_cluster=False)

        rows = ["Figure 10 - PC of LSH-LMI + Token Blocking, glue disabled",
                f"{'config':>14} {'threshold':>10} {'PC':>9} {'clusters':>9}"]
        for r, b in CONFIGS:
            banding = LSHBanding(bands=b, rows=r)
            candidates = lsh_candidate_pairs(
                profiles1, profiles2, banding=banding, seed=42
            )
            part = lmi.induce(profiles1, profiles2, candidates)
            blocks = LooselySchemaAwareBlocking(part).build(dataset)
            blocks = block_purging(blocks, dataset.num_profiles)
            quality = evaluate_blocks(blocks, dataset)
            rows.append(
                f"{f'(r={r}, b={b})':>14} {banding.threshold:10.2f} "
                f"{quality.pair_completeness:9.2%} {part.num_clusters:9d}")
        return rows

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    write_result("fig10_lsh_pc", "\n".join(rows))
