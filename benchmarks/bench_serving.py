#!/usr/bin/env python
"""Serving-layer load benchmark: concurrent tenants over real TCP.

Boots a :class:`repro.serving.ReproServer` on a loopback port and drives
it with one pipelined connection per tenant (default: 8 tenants), each
replaying a mixed workload — upserts from a generated ar1 stream with
interleaved arrival-time queries and occasional deletes — through a
bounded in-flight window.  ``overloaded`` responses are retried with
backoff and counted; every operation must eventually be acknowledged
(zero dropped acks is a hard SLO, not a statistic).

Client-side end-to-end latency (send -> matching in-order response) is
recorded per verb; the report carries p50/p95/p99 tails, sustained
throughput, retry counts, and the server's own ``stats`` roll-up
(observed batch sizes, queue depths, eviction/recovery counters).
Results are written as JSON (default: ``BENCH_serving.json`` at the
repository root) so serving behavior under load is a recorded,
regression-checkable artifact::

    PYTHONPATH=src python benchmarks/bench_serving.py             # full run
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke \\
        --max-p95-ms 250                                          # CI gate

Not a pytest module — run it as a script (like ``bench_streaming.py``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
import time
from collections import deque
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import BlastConfig  # noqa: E402
from repro.datasets import load_clean_clean  # noqa: E402
from repro.experiments.runutils import (  # noqa: E402
    json_envelope,
    percentiles_ms,
    scale_for_profiles,
    write_json_report,
)
from repro.serving import ReproServer, ServingClient, TenantRegistry  # noqa: E402

#: One query is interleaved per this many upserts, one delete per
#: this many upserts (the "mixed load" shape).
_QUERY_EVERY = 5
_DELETE_EVERY = 17


def build_ops(
    tenant_id: str, profiles: int, seed: int, settle_lag: int
) -> list[dict]:
    """The mixed op stream of one tenant, as protocol request records.

    Queries run between write batches, so a pipelined query can reach
    the session before a still-queued upsert of its target applies.
    With a bounded in-flight window of W, any op sent ≥ W ops after its
    target's upsert is ordered behind that upsert's ack — so queries and
    deletes only target profiles upserted at least *settle_lag* (> W)
    ops earlier, and every op in the replay must then be acked ``ok``.
    """
    scale = scale_for_profiles("ar1", profiles)
    dataset = load_clean_clean("ar1", scale=scale, seed=seed)
    rng = random.Random(seed)
    ops: list[dict] = []
    pending: deque[tuple[int, str, int]] = deque()
    settled: dict[str, int] = {}
    upserts = 0
    for gidx, profile in dataset.iter_profiles():
        source = dataset.source_of(gidx)
        ops.append(
            {
                "v": "upsert",
                "tenant": tenant_id,
                "id": profile.profile_id,
                "source": source,
                "attributes": [list(pair) for pair in profile.attributes],
            }
        )
        pending.append((len(ops) - 1, profile.profile_id, source))
        upserts += 1
        while pending and pending[0][0] <= len(ops) - settle_lag:
            _, pid, psource = pending.popleft()
            settled[pid] = psource
        if upserts % _QUERY_EVERY == 0 and settled:
            qid = rng.choice(sorted(settled))
            ops.append(
                {"v": "query", "tenant": tenant_id, "id": qid,
                 "k": 10, "source": settled[qid]}
            )
        if upserts % _DELETE_EVERY == 0 and len(settled) > 1:
            did = rng.choice(sorted(settled))
            ops.append(
                {"v": "delete", "tenant": tenant_id, "id": did,
                 "source": settled.pop(did)}
            )
    return ops


async def tenant_worker(
    host: str,
    port: int,
    ops: list[dict],
    window: int,
    latencies: dict[str, list[float]],
    counters: dict[str, int],
) -> None:
    """Replay *ops* over one pipelined connection with bounded in-flight.

    In-order responses are matched to sends positionally; ``overloaded``
    responses re-enqueue the op after a backoff.  Any other refusal
    counts as a dropped ack (the SLO the gate enforces at zero).
    """
    client = await ServingClient.connect(host, port)
    queue = deque(ops)
    inflight: deque[tuple[dict, float]] = deque()
    backoff = 0.005
    try:
        while queue or inflight:
            while queue and len(inflight) < window:
                record = queue.popleft()
                client._writer.write(
                    json.dumps(record).encode("utf-8") + b"\n"
                )
                inflight.append((record, time.perf_counter()))
            await client._writer.drain()
            line = await client._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            record, sent = inflight.popleft()
            elapsed = time.perf_counter() - sent
            response = json.loads(line)
            if response.get("ok"):
                latencies[record["v"]].append(elapsed)
                counters["acked"] += 1
                backoff = 0.005
            elif response.get("error") == "overloaded":
                counters["overload_retries"] += 1
                queue.append(record)
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 0.25)
            else:
                counters["dropped_acks"] += 1
    finally:
        await client.close()


def percentiles(samples: list[float]) -> dict[str, float]:
    """Latency tail of *samples* (seconds), reported in milliseconds."""
    return percentiles_ms(np.asarray(samples, dtype=np.float64) * 1e3)


async def run_async(args: argparse.Namespace, data_dir: Path) -> dict:
    profiles = 150 if args.smoke else args.profiles_per_tenant
    tenant_ids = [f"bench-{index:02d}" for index in range(args.tenants)]
    print(
        f"building {args.tenants} tenant workloads "
        f"(~{profiles} profiles each, seed={args.seed}) ..."
    )
    workloads = {
        tenant_id: build_ops(
            tenant_id, profiles, args.seed + index,
            settle_lag=2 * args.window,
        )
        for index, tenant_id in enumerate(tenant_ids)
    }
    total_ops = sum(len(ops) for ops in workloads.values())

    config = BlastConfig(
        weighting=args.weighting,
        serve_max_queue=args.max_queue,
        serve_batch_size=args.batch_size,
    )
    registry = TenantRegistry(data_dir, config, clean_clean=True)
    server = ReproServer(registry, log_interval=None)
    await server.start()

    latencies: dict[str, list[float]] = {"upsert": [], "query": [], "delete": []}
    counters = {"acked": 0, "overload_retries": 0, "dropped_acks": 0}
    print(
        f"driving {total_ops} ops over {args.tenants} connections "
        f"(window {args.window}) ..."
    )
    start = time.perf_counter()
    await asyncio.gather(
        *(
            tenant_worker(
                server.host, server.port, workloads[tenant_id],
                args.window, latencies, counters,
            )
            for tenant_id in tenant_ids
        )
    )
    elapsed = time.perf_counter() - start

    stats_client = await ServingClient.connect(server.host, server.port)
    server_stats = await stats_client.stats()
    await stats_client.close()
    await server.shutdown()

    ops_per_second = total_ops / elapsed if elapsed > 0 else float("inf")
    mean_batches = [
        tenant["mean_batch_size"]
        for tenant in server_stats["tenants"].values()
    ]
    report = json_envelope(
        "serving_multi_tenant_mixed_load",
        "ar1-synthetic/pipelined-upsert-query-delete",
        smoke=bool(args.smoke),
        tenants=args.tenants,
        profiles_per_tenant=profiles,
        window=args.window,
        serve_max_queue=args.max_queue,
        serve_batch_size=args.batch_size,
        weighting=args.weighting,
        seed=args.seed,
        total_ops=total_ops,
        acked_ops=counters["acked"],
        dropped_acks=counters["dropped_acks"],
        overload_retries=counters["overload_retries"],
        elapsed_seconds=round(elapsed, 4),
        ops_per_second=round(ops_per_second, 1),
        latency_ms={
            verb: percentiles(samples)
            for verb, samples in latencies.items()
        },
        mean_batch_size=round(
            sum(mean_batches) / len(mean_batches) if mean_batches else 0.0, 3
        ),
        server={
            "requests": server_stats["server"]["requests"],
            "evictions": server_stats["server"]["evictions"],
            "recoveries": server_stats["totals"]["recoveries"],
            "overloads": server_stats["totals"]["overloads"],
        },
    )
    print(
        f"  {total_ops} ops in {elapsed:.2f}s ({ops_per_second:,.0f} ops/s) "
        f"across {args.tenants} tenants"
    )
    for verb in ("upsert", "query", "delete"):
        tail = report["latency_ms"][verb]
        print(
            f"  {verb:6s} p50 {tail['p50']:.2f}ms, p95 {tail['p95']:.2f}ms, "
            f"p99 {tail['p99']:.2f}ms ({len(latencies[verb])} ops)"
        )
    print(
        f"  mean batch {report['mean_batch_size']:.2f}, "
        f"{counters['overload_retries']} overload retries, "
        f"{counters['dropped_acks']} dropped acks"
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=8,
                        help="concurrent tenants/connections "
                             "(default: %(default)s)")
    parser.add_argument("--profiles-per-tenant", type=int, default=1_000,
                        help="approximate per-tenant stream size "
                             "(default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized workload (~150 profiles/tenant)")
    parser.add_argument("--window", type=int, default=32,
                        help="max in-flight requests per connection "
                             "(default: %(default)s)")
    parser.add_argument("--max-queue", type=int, default=256,
                        help="serve_max_queue (default: %(default)s)")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="serve_batch_size (default: %(default)s)")
    parser.add_argument("--weighting", default="chi_h",
                        help="weighting scheme (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_serving.json",
                        help="JSON report path (default: %(default)s)")
    parser.add_argument("--max-p95-ms", type=float, default=None,
                        help="exit non-zero if any verb's p95 is higher")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        report = asyncio.run(run_async(args, Path(tmp)))
    write_json_report(args.output, report)
    print(f"wrote {args.output}")

    failed = False
    if report["dropped_acks"]:
        print(
            f"error: {report['dropped_acks']} operations were refused "
            "with a non-overloaded error (dropped acks must be zero)",
            file=sys.stderr,
        )
        failed = True
    if report["acked_ops"] != report["total_ops"]:
        print(
            f"error: {report['acked_ops']} acks for {report['total_ops']} "
            "ops — operations went missing",
            file=sys.stderr,
        )
        failed = True
    if args.max_p95_ms is not None:
        for verb, tail in report["latency_ms"].items():
            if tail["p95"] > args.max_p95_ms:
                print(
                    f"error: {verb} p95 {tail['p95']}ms above the "
                    f"{args.max_p95_ms}ms ceiling",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
