"""Table 5: the dbp comparison, including the LSH-accelerated variants.

Same rows as Table 4 plus "L*" (traditional meta-blocking over
LSH-accelerated LMI blocking) and "Blast*" (full BLAST with the LSH step).
"""

from harness import (
    BenchRow,
    blast_row,
    blocks_L,
    blocks_T,
    chi_h_mb_row,
    clean_dataset,
    lmi_overhead,
    partitioning_of,
    supervised_row,
    traditional_mb_row,
    write_result,
)

from repro.core import Blast, BlastConfig, prepare_blocks
from repro.graph.pruning import CardinalityNodePruning, WeightNodePruning
from repro.utils.timer import Timer

NAME = "dbp"
LSH_CONFIG = BlastConfig(use_lsh=True, lsh_threshold=0.3, seed=42)


def _lsh_blocks_and_overhead():
    dataset = clean_dataset(NAME)
    blast = Blast(LSH_CONFIG)
    with Timer() as timer:
        partitioning = blast.extract_loose_schema(dataset)
    blocks = prepare_blocks(dataset, partitioning)
    return blocks, partitioning, timer.elapsed


def test_table5_dbp(benchmark):
    def build_rows():
        dataset = clean_dataset(NAME)
        T = blocks_T(NAME)
        L = blocks_L(NAME)
        part = partitioning_of(NAME)
        lmi_cost = lmi_overhead(NAME)
        L_star, _, lsh_cost = _lsh_blocks_and_overhead()

        rows: list[BenchRow] = []
        for label, reciprocal in (("wnp1", False), ("wnp2", True)):
            rows.append(traditional_mb_row(
                f"{label} T", T, dataset,
                lambda r=reciprocal: WeightNodePruning(r)))
            rows.append(traditional_mb_row(
                f"{label} L*", L_star, dataset,
                lambda r=reciprocal: WeightNodePruning(r),
                extra_overhead=lsh_cost))
        for label, reciprocal in (("cnp1", False), ("cnp2", True)):
            rows.append(traditional_mb_row(
                f"{label} T", T, dataset,
                lambda r=reciprocal: CardinalityNodePruning(r)))
            rows.append(traditional_mb_row(
                f"{label} L*", L_star, dataset,
                lambda r=reciprocal: CardinalityNodePruning(r),
                extra_overhead=lsh_cost))
            rows.append(chi_h_mb_row(
                f"{label} L chi2h", L, dataset,
                CardinalityNodePruning(reciprocal), part,
                extra_overhead=lmi_cost))
        rows.append(supervised_row("sup. MB", T, dataset))
        rows.append(blast_row("Blast", dataset))
        rows.append(blast_row("Blast*", dataset, LSH_CONFIG))
        return rows

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    write_result(
        "table5_dbp",
        "Table 5 (dbp; * = LSH-accelerated LMI)\n"
        + "\n".join(r.formatted() for r in rows),
    )
