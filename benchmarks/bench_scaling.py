#!/usr/bin/env python
"""Scaling benchmark: python vs vectorized meta-blocking backends.

Builds a synthetic clean-clean workload (~10k profiles by default),
prepares the blocking-graph input once (token blocking -> purging ->
filtering), then times the full meta-blocking hot path — graph
materialization, edge weighting, pruning, block rebuild — under both
registered backends and verifies they retain the identical edge set.

Results are appended per weighting scheme and written as JSON (default:
``BENCH_metablocking.json`` at the repository root), so the speedup is a
recorded, regression-checkable artifact::

    PYTHONPATH=src python benchmarks/bench_scaling.py            # full run
    PYTHONPATH=src python benchmarks/bench_scaling.py --smoke    # CI-sized

Not a pytest module — run it as a script (the pytest-benchmark suite for
the paper's tables lives in the ``bench_table*.py`` files).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.blocking.base import BlockCollection  # noqa: E402
from repro.core import prepare_blocks  # noqa: E402
from repro.core.registry import BACKENDS  # noqa: E402
from repro.datasets import load_clean_clean  # noqa: E402
from repro.graph import MetaBlocker, WeightingScheme  # noqa: E402
from repro.graph.pruning import BlastPruning  # noqa: E402

#: Profiles per unit scale of the "ar1" generator (size1 + size2).
_AR1_PROFILES_PER_SCALE = 650 + 580


def build_workload(profiles: int, seed: int) -> tuple[BlockCollection, int]:
    """A prepared (purged + filtered) token-blocking collection + its size."""
    scale = profiles / _AR1_PROFILES_PER_SCALE
    dataset = load_clean_clean("ar1", scale=scale, seed=seed)
    return prepare_blocks(dataset), dataset.num_profiles


def time_backend(
    backend: str,
    blocks: BlockCollection,
    scheme: WeightingScheme,
    repeats: int,
) -> tuple[float, BlockCollection]:
    """Best-of-*repeats* wall-clock seconds for one full meta-blocking run."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        # Cold start for every repetition: drop the CSR entity-index
        # cache so the vectorized timing always includes the collection
        # lowering, mirroring the python path rebuilding its dict graph
        # from scratch each time.
        blocks.__dict__.pop("entity_index", None)
        meta = MetaBlocker(
            weighting=scheme, pruning=BlastPruning(), backend=backend
        )
        start = time.perf_counter()
        out = meta.run(blocks)
        best = min(best, time.perf_counter() - start)
    return best, out


def run(args: argparse.Namespace) -> dict:
    profiles = 1_500 if args.smoke else args.profiles
    print(f"building workload (~{profiles} profiles, seed={args.seed}) ...")
    blocks, num_profiles = build_workload(profiles, args.seed)
    print(
        f"  {len(blocks)} blocks, {blocks.aggregate_cardinality:,} "
        f"comparisons, {blocks.num_indexed_profiles} indexed profiles"
    )

    schemes = [WeightingScheme(name) for name in args.schemes.split(",")]
    runs = []
    for scheme in schemes:
        py_seconds, py_blocks = time_backend(
            "python", blocks, scheme, args.repeats
        )
        vec_seconds, vec_blocks = time_backend(
            "vectorized", blocks, scheme, args.repeats
        )
        equivalent = py_blocks.distinct_pairs() == vec_blocks.distinct_pairs()
        speedup = py_seconds / vec_seconds if vec_seconds > 0 else float("inf")
        runs.append(
            {
                "scheme": scheme.value,
                "pruning": "blast",
                "python_seconds": round(py_seconds, 6),
                "vectorized_seconds": round(vec_seconds, 6),
                "speedup": round(speedup, 2),
                "retained_edges": len(vec_blocks),
                "equivalent": equivalent,
            }
        )
        print(
            f"  {scheme.value:>6}: python {py_seconds:8.3f}s | vectorized "
            f"{vec_seconds:8.3f}s | {speedup:6.1f}x | "
            f"{'OK' if equivalent else 'MISMATCH'}"
        )

    speedups = [r["speedup"] for r in runs]
    report = {
        "benchmark": "metablocking_backend_scaling",
        "workload": "ar1-synthetic/token-blocking/purged+filtered",
        "smoke": bool(args.smoke),
        "profiles": num_profiles,
        "blocks": len(blocks),
        "aggregate_comparisons": blocks.aggregate_cardinality,
        "distinct_pairs": blocks.count_distinct_pairs(),
        "repeats": args.repeats,
        "seed": args.seed,
        "backends": list(BACKENDS.names()),
        "runs": runs,
        "speedup_min": min(speedups),
        "speedup_max": max(speedups),
        "all_equivalent": all(r["equivalent"] for r in runs),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profiles", type=int, default=10_000,
                        help="approximate workload size (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized workload (~1.5k profiles)")
    parser.add_argument("--schemes", default="chi_h,cbs,js,ecbs,ejs,arcs",
                        help="comma-separated weighting schemes to time")
    parser.add_argument("--repeats", type=int, default=2,
                        help="repetitions per backend; best time wins")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_metablocking.json",
                        help="JSON report path (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if any scheme speeds up less")
    args = parser.parse_args(argv)

    report = run(args)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    if not report["all_equivalent"]:
        print("error: backends disagree on the retained edge set",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None and report["speedup_min"] < args.min_speedup:
        print(f"error: speedup {report['speedup_min']}x below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
