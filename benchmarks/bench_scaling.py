#!/usr/bin/env python
"""Scaling benchmark: python vs vectorized vs parallel meta-blocking.

Builds a synthetic clean-clean workload (~10k profiles by default),
prepares the blocking-graph input once (token blocking -> purging ->
filtering), then times the full meta-blocking hot path — graph
materialization, edge weighting, pruning, block rebuild — under the
registered backends and verifies they retain the identical edge set.

A dedicated section times the sharded ``parallel`` backend against the
serial vectorized baseline (same workload, CHI_H weighting) across
worker counts, plus the ``workers=1`` chunked low-memory mode, and
records the serial-vs-parallel speedup.

A second section times the full *tokenize -> schema -> block ->
meta-block* pipeline twice — once through the string-era per-layer
re-tokenization paths (``interned=False``) and once through the shared
:class:`~repro.data.InternedCorpus` — and records the per-phase wall
clock, proving the single-pass win end to end.

Results are appended per weighting scheme and written as JSON (default:
``BENCH_metablocking.json`` at the repository root), so the speedup is a
recorded, regression-checkable artifact::

    PYTHONPATH=src python benchmarks/bench_scaling.py            # full run
    PYTHONPATH=src python benchmarks/bench_scaling.py --smoke    # CI-sized

Not a pytest module — run it as a script (the pytest-benchmark suite for
the paper's tables lives in the ``bench_table*.py`` files).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.blocking.base import BlockCollection  # noqa: E402
from repro.blocking.filtering import block_filtering  # noqa: E402
from repro.blocking.purging import block_purging  # noqa: E402
from repro.blocking.schema_aware import (  # noqa: E402
    LooselySchemaAwareBlocking,
    make_key_entropy,
)
from repro.core import prepare_blocks  # noqa: E402
from repro.core.registry import BACKENDS  # noqa: E402
from repro.core.stages import SchemaExtraction  # noqa: E402
from repro.datasets import load_clean_clean  # noqa: E402
from repro.experiments.runutils import (  # noqa: E402
    pairs_digest,
    peak_rss_mb,
    scale_for_profiles,
    write_json_report,
)
from repro.graph import MetaBlocker, WeightingScheme  # noqa: E402
from repro.graph.pruning import BlastPruning  # noqa: E402


def _pairs_digest(blocks: BlockCollection) -> str:
    """Order-independent digest of the retained pair set (probe compare)."""
    return pairs_digest(blocks.iter_distinct_pairs())


def build_workload(profiles: int, seed: int) -> tuple[BlockCollection, int]:
    """A prepared (purged + filtered) token-blocking collection + its size."""
    scale = scale_for_profiles("ar1", profiles)
    dataset = load_clean_clean("ar1", scale=scale, seed=seed)
    return prepare_blocks(dataset), dataset.num_profiles


def time_backend(
    backend: str,
    blocks: BlockCollection,
    scheme: WeightingScheme,
    repeats: int,
    backend_options: dict | None = None,
) -> tuple[float, BlockCollection]:
    """Best-of-*repeats* wall-clock seconds for one full meta-blocking run."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        # Cold start for every repetition: drop the CSR entity-index
        # cache so the vectorized timing always includes the collection
        # lowering, mirroring the python path rebuilding its dict graph
        # from scratch each time.
        blocks.__dict__.pop("entity_index", None)
        meta = MetaBlocker(
            weighting=scheme,
            pruning=BlastPruning(),
            backend=backend,
            backend_options=dict(backend_options or {}),
        )
        start = time.perf_counter()
        out = meta.run(blocks)
        best = min(best, time.perf_counter() - start)
    return best, out


def run_parallel_scaling(
    args: argparse.Namespace, blocks: BlockCollection
) -> dict:
    """Serial-vectorized vs sharded-parallel, across worker counts.

    Each worker count is timed twice: once with the default per-run pool
    (fork + ship arrays every call) and once with ``pool="persistent"``
    (fork once, publish the CSR arrays into shared memory once, reuse) —
    the per-worker pair is what quantifies the pool-amortization win.
    """
    from repro.graph.pool import shutdown_pool

    scheme = WeightingScheme.CHI_H
    serial_seconds, serial_out = time_backend(
        "vectorized", blocks, scheme, args.repeats
    )
    serial_pairs = serial_out.distinct_pairs()
    max_workers = (
        args.workers if args.workers is not None else os.cpu_count() or 1
    )
    worker_counts = sorted({1, 2, 4, max_workers} & set(range(1, max_workers + 1)))

    print(
        f"parallel backend scaling (chi_h, serial vectorized "
        f"{serial_seconds:.3f}s baseline) ..."
    )
    runs = []
    try:
        for workers in worker_counts:
            seconds, out = time_backend(
                "parallel", blocks, scheme, args.repeats,
                backend_options={"workers": workers},
            )
            persistent_seconds, persistent_out = time_backend(
                "parallel", blocks, scheme, args.repeats,
                backend_options={"workers": workers, "pool": "persistent"},
            )
            equivalent = (
                out.distinct_pairs() == serial_pairs
                and persistent_out.distinct_pairs() == serial_pairs
            )
            speedup = (
                serial_seconds / seconds if seconds > 0 else float("inf")
            )
            persistent_speedup = (
                serial_seconds / persistent_seconds
                if persistent_seconds > 0
                else float("inf")
            )
            runs.append(
                {
                    "workers": workers,
                    "seconds": round(seconds, 6),
                    "speedup_vs_vectorized": round(speedup, 2),
                    "persistent_seconds": round(persistent_seconds, 6),
                    "persistent_speedup_vs_vectorized": round(
                        persistent_speedup, 2
                    ),
                    "equivalent": equivalent,
                }
            )
            print(
                f"  workers={workers:>2}: per-run {seconds:8.3f}s "
                f"({speedup:5.2f}x) | persistent "
                f"{persistent_seconds:8.3f}s ({persistent_speedup:5.2f}x) | "
                f"{'OK' if equivalent else 'MISMATCH'}"
            )
    finally:
        shutdown_pool()

    # The chunked low-memory mode: sequential shards, capped pair arrays.
    chunk_cap = max(10_000, blocks.count_distinct_pairs() // 8)
    chunked_seconds, chunked_out = time_backend(
        "parallel", blocks, scheme, args.repeats,
        backend_options={"workers": 1, "shard_size": chunk_cap},
    )
    chunked_equivalent = chunked_out.distinct_pairs() == serial_pairs
    print(
        f"  chunked (workers=1, shard_size={chunk_cap}): "
        f"{chunked_seconds:8.3f}s | "
        f"{'OK' if chunked_equivalent else 'MISMATCH'}"
    )
    best = max(
        runs,
        key=lambda r: max(
            r["speedup_vs_vectorized"], r["persistent_speedup_vs_vectorized"]
        ),
    )
    return {
        "scheme": scheme.value,
        "pruning": "blast",
        "vectorized_seconds": round(serial_seconds, 6),
        "runs": runs,
        "chunked": {
            "shard_size": chunk_cap,
            "seconds": round(chunked_seconds, 6),
            "equivalent": chunked_equivalent,
        },
        "best_speedup": max(
            best["speedup_vs_vectorized"],
            best["persistent_speedup_vs_vectorized"],
        ),
        "best_workers": best["workers"],
        "all_equivalent": chunked_equivalent
        and all(r["equivalent"] for r in runs),
    }


def run_rss_probe(args: argparse.Namespace) -> int:
    """Subprocess mode: one meta-blocking run, peak RSS reported as JSON.

    ``ru_maxrss`` is a lifetime high-water mark, so the spill tier's
    bounded-memory claim can only be measured in a process that never
    held the in-memory merge — the parent spawns one probe per mode and
    compares their digests for equivalence.
    """
    blocks, _ = build_workload(args.profiles, args.seed)
    shard_size = max(10_000, blocks.count_distinct_pairs() // 8)
    options: dict = {"workers": 1, "shard_size": shard_size}
    if args.rss_probe == "spill":
        options["spill_dir"] = args.spill_dir or tempfile.gettempdir()
        options["spill_threshold_mb"] = args.spill_threshold_mb
    meta = MetaBlocker(
        weighting=WeightingScheme.CHI_H,
        pruning=BlastPruning(),
        backend="parallel",
        backend_options=options,
    )
    start = time.perf_counter()
    out = meta.run(blocks)
    seconds = time.perf_counter() - start
    print(json.dumps({
        "mode": args.rss_probe,
        "seconds": round(seconds, 6),
        "peak_rss_mb": round(peak_rss_mb(), 2),
        "digest": _pairs_digest(out),
    }))
    return 0


def _spawn_rss_probe(args: argparse.Namespace, mode: str, spill_dir: str) -> dict:
    command = [
        sys.executable, str(Path(__file__).resolve()),
        "--rss-probe", mode,
        "--profiles", str(args.large_profiles),
        "--seed", str(args.seed),
        "--spill-threshold-mb", str(args.spill_threshold_mb),
        "--spill-dir", spill_dir,
    ]
    completed = subprocess.run(
        command, capture_output=True, text=True, check=True
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def run_large_tier(args: argparse.Namespace) -> dict:
    """The ≥100k-profile tier: persistent-pool scaling + spill RSS budget.

    Two measurements at a scale where pool startup and the merge spike
    actually register: (1) per-worker-count persistent-pool timings
    against the serial vectorized baseline, (2) in-memory vs spilled
    runs in fresh subprocesses, comparing peak RSS and asserting the
    retained pair digests match.
    """
    print(
        f"large tier (~{args.large_profiles} profiles, "
        f"spill threshold {args.spill_threshold_mb} MiB) ..."
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as spill_dir:
        in_memory = _spawn_rss_probe(args, "memory", spill_dir)
        spilled = _spawn_rss_probe(args, "spill", spill_dir)
        leftovers = sorted(os.listdir(spill_dir))
    equivalent = in_memory["digest"] == spilled["digest"]
    print(
        f"  in-memory: {in_memory['seconds']:8.3f}s | "
        f"peak RSS {in_memory['peak_rss_mb']:8.1f} MiB"
    )
    print(
        f"  spilled:   {spilled['seconds']:8.3f}s | "
        f"peak RSS {spilled['peak_rss_mb']:8.1f} MiB | "
        f"{'OK' if equivalent else 'MISMATCH'}"
    )

    blocks, num_profiles = build_workload(args.large_profiles, args.seed)
    scaling = run_parallel_scaling(args, blocks)
    return {
        "profiles": num_profiles,
        "spill_threshold_mb": args.spill_threshold_mb,
        "in_memory": {k: v for k, v in in_memory.items() if k != "digest"},
        "spilled": {k: v for k, v in spilled.items() if k != "digest"},
        "spill_leftover_files": leftovers,
        "equivalent": equivalent,
        "parallel_scaling": scaling,
        "all_equivalent": equivalent
        and not leftovers
        and scaling["all_equivalent"],
    }


def time_pipeline_phases(
    profiles: int, seed: int, interned: bool, repeats: int
) -> tuple[dict[str, float], BlockCollection]:
    """Best-of-*repeats* seconds for each pipeline phase, one mode.

    Every repetition rebuilds the dataset from scratch so neither the
    cached corpus nor the per-profile token memoization leaks work across
    timings; the phases are tokenize (corpus build, interned mode only),
    schema (attribute profiling + LMI + entropies), blocking
    (cluster-disambiguated token blocking), restructure (purging +
    filtering) and metablocking (vectorized backend).
    """
    scale = scale_for_profiles("ar1", profiles)
    best: dict[str, float] = {}
    out = None

    def record(phase: str, seconds: float) -> None:
        best[phase] = min(best.get(phase, float("inf")), seconds)

    for _ in range(repeats):
        dataset = load_clean_clean("ar1", scale=scale, seed=seed)
        if interned:
            start = time.perf_counter()
            dataset.corpus  # noqa: B018 - the one shared tokenization pass
            record("tokenize", time.perf_counter() - start)
        else:
            # The string era has no separate tokenize phase: the regex
            # runs inside schema and blocking.  Record 0 so both modes
            # carry the same phase keys in the JSON artifact.
            record("tokenize", 0.0)

        start = time.perf_counter()
        partitioning = SchemaExtraction(interned=interned).extract(dataset)
        record("schema", time.perf_counter() - start)

        start = time.perf_counter()
        blocks = LooselySchemaAwareBlocking(
            partitioning, interned=interned
        ).build(dataset)
        record("blocking", time.perf_counter() - start)

        start = time.perf_counter()
        blocks = block_purging(blocks, dataset.num_profiles)
        blocks = block_filtering(blocks)
        record("restructure", time.perf_counter() - start)

        start = time.perf_counter()
        meta = MetaBlocker(
            weighting=WeightingScheme.CHI_H,
            pruning=BlastPruning(),
            key_entropy=make_key_entropy(partitioning),
            backend="vectorized",
        )
        out = meta.run(blocks)
        record("metablocking", time.perf_counter() - start)
    return best, out


def run_phase_breakdown(args: argparse.Namespace, profiles: int) -> dict:
    """The tokenize->block->metablock breakdown: string era vs interned."""
    print("phase breakdown (string era vs interned corpus) ...")
    legacy, legacy_out = time_pipeline_phases(
        profiles, args.seed, interned=False, repeats=args.repeats
    )
    interned, interned_out = time_pipeline_phases(
        profiles, args.seed, interned=True, repeats=args.repeats
    )
    equivalent = legacy_out.distinct_pairs() == interned_out.distinct_pairs()

    # The phases the corpus refactor targets: everything from raw strings
    # to a block collection.  Meta-blocking is reported but not part of
    # the ratio — it consumed arrays before this refactor already.
    legacy_front = legacy["schema"] + legacy["blocking"]
    interned_front = (
        interned["tokenize"] + interned["schema"] + interned["blocking"]
    )
    speedup = legacy_front / interned_front if interned_front > 0 else float("inf")

    for mode, phases in (("string-era", legacy), ("interned", interned)):
        line = " | ".join(
            f"{name} {seconds:7.3f}s" for name, seconds in phases.items()
        )
        print(f"  {mode:>10}: {line}")
    print(
        f"  tokenize+schema+blocking: {legacy_front:.3f}s -> "
        f"{interned_front:.3f}s ({speedup:.1f}x) | "
        f"{'OK' if equivalent else 'MISMATCH'}"
    )
    return {
        "phases": ["tokenize", "schema", "blocking", "restructure", "metablocking"],
        "legacy_seconds": {k: round(v, 6) for k, v in legacy.items()},
        "interned_seconds": {k: round(v, 6) for k, v in interned.items()},
        "legacy_tokenize_schema_blocking": round(legacy_front, 6),
        "interned_tokenize_schema_blocking": round(interned_front, 6),
        "speedup_tokenize_schema_blocking": round(speedup, 2),
        "equivalent": equivalent,
    }


def run(args: argparse.Namespace) -> dict:
    profiles = 1_500 if args.smoke else args.profiles
    print(f"building workload (~{profiles} profiles, seed={args.seed}) ...")
    blocks, num_profiles = build_workload(profiles, args.seed)
    print(
        f"  {len(blocks)} blocks, {blocks.aggregate_cardinality:,} "
        f"comparisons, {blocks.num_indexed_profiles} indexed profiles"
    )

    schemes = [WeightingScheme(name) for name in args.schemes.split(",")]
    runs = []
    for scheme in schemes:
        py_seconds, py_blocks = time_backend(
            "python", blocks, scheme, args.repeats
        )
        vec_seconds, vec_blocks = time_backend(
            "vectorized", blocks, scheme, args.repeats
        )
        equivalent = py_blocks.distinct_pairs() == vec_blocks.distinct_pairs()
        speedup = py_seconds / vec_seconds if vec_seconds > 0 else float("inf")
        runs.append(
            {
                "scheme": scheme.value,
                "pruning": "blast",
                "python_seconds": round(py_seconds, 6),
                "vectorized_seconds": round(vec_seconds, 6),
                "speedup": round(speedup, 2),
                "retained_edges": len(vec_blocks),
                "equivalent": equivalent,
            }
        )
        print(
            f"  {scheme.value:>6}: python {py_seconds:8.3f}s | vectorized "
            f"{vec_seconds:8.3f}s | {speedup:6.1f}x | "
            f"{'OK' if equivalent else 'MISMATCH'}"
        )

    parallel = run_parallel_scaling(args, blocks)
    breakdown = run_phase_breakdown(args, profiles)
    large_tier = run_large_tier(args) if args.large_tier else None

    speedups = [r["speedup"] for r in runs]
    report = {
        "benchmark": "metablocking_backend_scaling",
        "workload": "ar1-synthetic/token-blocking/purged+filtered",
        "smoke": bool(args.smoke),
        "profiles": num_profiles,
        "blocks": len(blocks),
        "aggregate_comparisons": blocks.aggregate_cardinality,
        "distinct_pairs": blocks.count_distinct_pairs(),
        "repeats": args.repeats,
        "seed": args.seed,
        "backends": list(BACKENDS.names()),
        "runs": runs,
        "parallel_scaling": parallel,
        "phase_breakdown": breakdown,
        "large_tier": large_tier,
        "speedup_min": min(speedups),
        "speedup_max": max(speedups),
        "all_equivalent": all(r["equivalent"] for r in runs)
        and parallel["all_equivalent"]
        and breakdown["equivalent"]
        and (large_tier is None or large_tier["all_equivalent"]),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profiles", type=int, default=10_000,
                        help="approximate workload size (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized workload (~1.5k profiles)")
    parser.add_argument("--schemes", default="chi_h,cbs,js,ecbs,ejs,arcs",
                        help="comma-separated weighting schemes to time")
    parser.add_argument("--repeats", type=int, default=2,
                        help="repetitions per backend; best time wins")
    parser.add_argument("--workers", type=int, default=None,
                        help="max worker count of the parallel-scaling "
                             "section (default: the machine's cpu count)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--large-tier", action="store_true",
                        help="also run the out-of-core tier: persistent-pool "
                             "scaling and spill peak-RSS probes at "
                             "--large-profiles scale")
    parser.add_argument("--large-profiles", type=int, default=100_000,
                        help="workload size of the large tier "
                             "(default: %(default)s)")
    parser.add_argument("--spill-threshold-mb", type=float, default=16.0,
                        help="spill byte budget of the large tier / probe "
                             "(default: %(default)s)")
    parser.add_argument("--max-spill-rss-mb", type=float, default=None,
                        help="exit non-zero if the spilled large-tier run "
                             "peaks above this resident-set budget")
    parser.add_argument("--rss-probe", choices=("memory", "spill"),
                        default=None, help=argparse.SUPPRESS)
    parser.add_argument("--spill-dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_metablocking.json",
                        help="JSON report path (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if any scheme speeds up less")
    parser.add_argument("--min-phase-speedup", type=float, default=None,
                        help="exit non-zero if the interned corpus speeds "
                             "up tokenize+schema+blocking less than this")
    parser.add_argument("--min-parallel-speedup", type=float, default=None,
                        help="exit non-zero if the best parallel-backend "
                             "speedup over serial vectorized is below this")
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")
    if args.rss_probe is not None:
        return run_rss_probe(args)

    report = run(args)
    write_json_report(args.output, report)
    print(f"wrote {args.output}")

    if not report["all_equivalent"]:
        print("error: backends disagree on the retained edge set",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None and report["speedup_min"] < args.min_speedup:
        print(f"error: speedup {report['speedup_min']}x below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        return 1
    phase_speedup = report["phase_breakdown"]["speedup_tokenize_schema_blocking"]
    if (
        args.min_phase_speedup is not None
        and phase_speedup < args.min_phase_speedup
    ):
        print(f"error: phase speedup {phase_speedup}x below the "
              f"{args.min_phase_speedup}x floor", file=sys.stderr)
        return 1
    parallel_speedup = report["parallel_scaling"]["best_speedup"]
    if report["large_tier"] is not None:
        parallel_speedup = max(
            parallel_speedup,
            report["large_tier"]["parallel_scaling"]["best_speedup"],
        )
    if args.min_parallel_speedup is not None:
        if (os.cpu_count() or 1) <= 1:
            # One core cannot demonstrate parallel speedup; bit-identity
            # (all_equivalent, checked above) is still enforced.
            print(
                "note: --min-parallel-speedup gate skipped on a "
                "single-CPU machine"
            )
        elif parallel_speedup < args.min_parallel_speedup:
            print(f"error: parallel speedup {parallel_speedup}x below the "
                  f"{args.min_parallel_speedup}x floor", file=sys.stderr)
            return 1
    spilled_rss = (
        report["large_tier"]["spilled"]["peak_rss_mb"]
        if report["large_tier"] is not None
        else None
    )
    if (
        args.max_spill_rss_mb is not None
        and spilled_rss is not None
        and spilled_rss > args.max_spill_rss_mb
    ):
        print(f"error: spilled peak RSS {spilled_rss} MiB above the "
              f"{args.max_spill_rss_mb} MiB budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
