#!/usr/bin/env python
"""Scaling benchmark: python vs vectorized vs parallel meta-blocking.

Builds a synthetic clean-clean workload (~10k profiles by default),
prepares the blocking-graph input once (token blocking -> purging ->
filtering), then times the full meta-blocking hot path — graph
materialization, edge weighting, pruning, block rebuild — under the
registered backends and verifies they retain the identical edge set.

A dedicated section times the sharded ``parallel`` backend against the
serial vectorized baseline (same workload, CHI_H weighting) across
worker counts, plus the ``workers=1`` chunked low-memory mode, and
records the serial-vs-parallel speedup.

A second section times the full *tokenize -> schema -> block ->
meta-block* pipeline twice — once through the string-era per-layer
re-tokenization paths (``interned=False``) and once through the shared
:class:`~repro.data.InternedCorpus` — and records the per-phase wall
clock, proving the single-pass win end to end.

Results are appended per weighting scheme and written as JSON (default:
``BENCH_metablocking.json`` at the repository root), so the speedup is a
recorded, regression-checkable artifact::

    PYTHONPATH=src python benchmarks/bench_scaling.py            # full run
    PYTHONPATH=src python benchmarks/bench_scaling.py --smoke    # CI-sized

Not a pytest module — run it as a script (the pytest-benchmark suite for
the paper's tables lives in the ``bench_table*.py`` files).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.blocking.base import BlockCollection  # noqa: E402
from repro.blocking.filtering import block_filtering  # noqa: E402
from repro.blocking.purging import block_purging  # noqa: E402
from repro.blocking.schema_aware import (  # noqa: E402
    LooselySchemaAwareBlocking,
    make_key_entropy,
)
from repro.core import prepare_blocks  # noqa: E402
from repro.core.registry import BACKENDS  # noqa: E402
from repro.core.stages import SchemaExtraction  # noqa: E402
from repro.datasets import load_clean_clean  # noqa: E402
from repro.graph import MetaBlocker, WeightingScheme  # noqa: E402
from repro.graph.pruning import BlastPruning  # noqa: E402

#: Profiles per unit scale of the "ar1" generator (size1 + size2).
_AR1_PROFILES_PER_SCALE = 650 + 580


def build_workload(profiles: int, seed: int) -> tuple[BlockCollection, int]:
    """A prepared (purged + filtered) token-blocking collection + its size."""
    scale = profiles / _AR1_PROFILES_PER_SCALE
    dataset = load_clean_clean("ar1", scale=scale, seed=seed)
    return prepare_blocks(dataset), dataset.num_profiles


def time_backend(
    backend: str,
    blocks: BlockCollection,
    scheme: WeightingScheme,
    repeats: int,
    backend_options: dict | None = None,
) -> tuple[float, BlockCollection]:
    """Best-of-*repeats* wall-clock seconds for one full meta-blocking run."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        # Cold start for every repetition: drop the CSR entity-index
        # cache so the vectorized timing always includes the collection
        # lowering, mirroring the python path rebuilding its dict graph
        # from scratch each time.
        blocks.__dict__.pop("entity_index", None)
        meta = MetaBlocker(
            weighting=scheme,
            pruning=BlastPruning(),
            backend=backend,
            backend_options=dict(backend_options or {}),
        )
        start = time.perf_counter()
        out = meta.run(blocks)
        best = min(best, time.perf_counter() - start)
    return best, out


def run_parallel_scaling(
    args: argparse.Namespace, blocks: BlockCollection
) -> dict:
    """Serial-vectorized vs sharded-parallel, across worker counts."""
    import os

    scheme = WeightingScheme.CHI_H
    serial_seconds, serial_out = time_backend(
        "vectorized", blocks, scheme, args.repeats
    )
    serial_pairs = serial_out.distinct_pairs()
    max_workers = (
        args.workers if args.workers is not None else os.cpu_count() or 1
    )
    worker_counts = sorted({1, 2, 4, max_workers} & set(range(1, max_workers + 1)))

    print(
        f"parallel backend scaling (chi_h, serial vectorized "
        f"{serial_seconds:.3f}s baseline) ..."
    )
    runs = []
    for workers in worker_counts:
        seconds, out = time_backend(
            "parallel", blocks, scheme, args.repeats,
            backend_options={"workers": workers},
        )
        equivalent = out.distinct_pairs() == serial_pairs
        speedup = serial_seconds / seconds if seconds > 0 else float("inf")
        runs.append(
            {
                "workers": workers,
                "seconds": round(seconds, 6),
                "speedup_vs_vectorized": round(speedup, 2),
                "equivalent": equivalent,
            }
        )
        print(
            f"  workers={workers:>2}: {seconds:8.3f}s | {speedup:5.2f}x | "
            f"{'OK' if equivalent else 'MISMATCH'}"
        )

    # The chunked low-memory mode: sequential shards, capped pair arrays.
    chunk_cap = max(10_000, blocks.count_distinct_pairs() // 8)
    chunked_seconds, chunked_out = time_backend(
        "parallel", blocks, scheme, args.repeats,
        backend_options={"workers": 1, "shard_size": chunk_cap},
    )
    chunked_equivalent = chunked_out.distinct_pairs() == serial_pairs
    print(
        f"  chunked (workers=1, shard_size={chunk_cap}): "
        f"{chunked_seconds:8.3f}s | "
        f"{'OK' if chunked_equivalent else 'MISMATCH'}"
    )
    best = max(runs, key=lambda r: r["speedup_vs_vectorized"])
    return {
        "scheme": scheme.value,
        "pruning": "blast",
        "vectorized_seconds": round(serial_seconds, 6),
        "runs": runs,
        "chunked": {
            "shard_size": chunk_cap,
            "seconds": round(chunked_seconds, 6),
            "equivalent": chunked_equivalent,
        },
        "best_speedup": best["speedup_vs_vectorized"],
        "best_workers": best["workers"],
        "all_equivalent": chunked_equivalent
        and all(r["equivalent"] for r in runs),
    }


def time_pipeline_phases(
    profiles: int, seed: int, interned: bool, repeats: int
) -> tuple[dict[str, float], BlockCollection]:
    """Best-of-*repeats* seconds for each pipeline phase, one mode.

    Every repetition rebuilds the dataset from scratch so neither the
    cached corpus nor the per-profile token memoization leaks work across
    timings; the phases are tokenize (corpus build, interned mode only),
    schema (attribute profiling + LMI + entropies), blocking
    (cluster-disambiguated token blocking), restructure (purging +
    filtering) and metablocking (vectorized backend).
    """
    scale = profiles / _AR1_PROFILES_PER_SCALE
    best: dict[str, float] = {}
    out = None

    def record(phase: str, seconds: float) -> None:
        best[phase] = min(best.get(phase, float("inf")), seconds)

    for _ in range(repeats):
        dataset = load_clean_clean("ar1", scale=scale, seed=seed)
        if interned:
            start = time.perf_counter()
            dataset.corpus  # noqa: B018 - the one shared tokenization pass
            record("tokenize", time.perf_counter() - start)
        else:
            # The string era has no separate tokenize phase: the regex
            # runs inside schema and blocking.  Record 0 so both modes
            # carry the same phase keys in the JSON artifact.
            record("tokenize", 0.0)

        start = time.perf_counter()
        partitioning = SchemaExtraction(interned=interned).extract(dataset)
        record("schema", time.perf_counter() - start)

        start = time.perf_counter()
        blocks = LooselySchemaAwareBlocking(
            partitioning, interned=interned
        ).build(dataset)
        record("blocking", time.perf_counter() - start)

        start = time.perf_counter()
        blocks = block_purging(blocks, dataset.num_profiles)
        blocks = block_filtering(blocks)
        record("restructure", time.perf_counter() - start)

        start = time.perf_counter()
        meta = MetaBlocker(
            weighting=WeightingScheme.CHI_H,
            pruning=BlastPruning(),
            key_entropy=make_key_entropy(partitioning),
            backend="vectorized",
        )
        out = meta.run(blocks)
        record("metablocking", time.perf_counter() - start)
    return best, out


def run_phase_breakdown(args: argparse.Namespace, profiles: int) -> dict:
    """The tokenize->block->metablock breakdown: string era vs interned."""
    print("phase breakdown (string era vs interned corpus) ...")
    legacy, legacy_out = time_pipeline_phases(
        profiles, args.seed, interned=False, repeats=args.repeats
    )
    interned, interned_out = time_pipeline_phases(
        profiles, args.seed, interned=True, repeats=args.repeats
    )
    equivalent = legacy_out.distinct_pairs() == interned_out.distinct_pairs()

    # The phases the corpus refactor targets: everything from raw strings
    # to a block collection.  Meta-blocking is reported but not part of
    # the ratio — it consumed arrays before this refactor already.
    legacy_front = legacy["schema"] + legacy["blocking"]
    interned_front = (
        interned["tokenize"] + interned["schema"] + interned["blocking"]
    )
    speedup = legacy_front / interned_front if interned_front > 0 else float("inf")

    for mode, phases in (("string-era", legacy), ("interned", interned)):
        line = " | ".join(
            f"{name} {seconds:7.3f}s" for name, seconds in phases.items()
        )
        print(f"  {mode:>10}: {line}")
    print(
        f"  tokenize+schema+blocking: {legacy_front:.3f}s -> "
        f"{interned_front:.3f}s ({speedup:.1f}x) | "
        f"{'OK' if equivalent else 'MISMATCH'}"
    )
    return {
        "phases": ["tokenize", "schema", "blocking", "restructure", "metablocking"],
        "legacy_seconds": {k: round(v, 6) for k, v in legacy.items()},
        "interned_seconds": {k: round(v, 6) for k, v in interned.items()},
        "legacy_tokenize_schema_blocking": round(legacy_front, 6),
        "interned_tokenize_schema_blocking": round(interned_front, 6),
        "speedup_tokenize_schema_blocking": round(speedup, 2),
        "equivalent": equivalent,
    }


def run(args: argparse.Namespace) -> dict:
    profiles = 1_500 if args.smoke else args.profiles
    print(f"building workload (~{profiles} profiles, seed={args.seed}) ...")
    blocks, num_profiles = build_workload(profiles, args.seed)
    print(
        f"  {len(blocks)} blocks, {blocks.aggregate_cardinality:,} "
        f"comparisons, {blocks.num_indexed_profiles} indexed profiles"
    )

    schemes = [WeightingScheme(name) for name in args.schemes.split(",")]
    runs = []
    for scheme in schemes:
        py_seconds, py_blocks = time_backend(
            "python", blocks, scheme, args.repeats
        )
        vec_seconds, vec_blocks = time_backend(
            "vectorized", blocks, scheme, args.repeats
        )
        equivalent = py_blocks.distinct_pairs() == vec_blocks.distinct_pairs()
        speedup = py_seconds / vec_seconds if vec_seconds > 0 else float("inf")
        runs.append(
            {
                "scheme": scheme.value,
                "pruning": "blast",
                "python_seconds": round(py_seconds, 6),
                "vectorized_seconds": round(vec_seconds, 6),
                "speedup": round(speedup, 2),
                "retained_edges": len(vec_blocks),
                "equivalent": equivalent,
            }
        )
        print(
            f"  {scheme.value:>6}: python {py_seconds:8.3f}s | vectorized "
            f"{vec_seconds:8.3f}s | {speedup:6.1f}x | "
            f"{'OK' if equivalent else 'MISMATCH'}"
        )

    parallel = run_parallel_scaling(args, blocks)
    breakdown = run_phase_breakdown(args, profiles)

    speedups = [r["speedup"] for r in runs]
    report = {
        "benchmark": "metablocking_backend_scaling",
        "workload": "ar1-synthetic/token-blocking/purged+filtered",
        "smoke": bool(args.smoke),
        "profiles": num_profiles,
        "blocks": len(blocks),
        "aggregate_comparisons": blocks.aggregate_cardinality,
        "distinct_pairs": blocks.count_distinct_pairs(),
        "repeats": args.repeats,
        "seed": args.seed,
        "backends": list(BACKENDS.names()),
        "runs": runs,
        "parallel_scaling": parallel,
        "phase_breakdown": breakdown,
        "speedup_min": min(speedups),
        "speedup_max": max(speedups),
        "all_equivalent": all(r["equivalent"] for r in runs)
        and parallel["all_equivalent"]
        and breakdown["equivalent"],
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profiles", type=int, default=10_000,
                        help="approximate workload size (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized workload (~1.5k profiles)")
    parser.add_argument("--schemes", default="chi_h,cbs,js,ecbs,ejs,arcs",
                        help="comma-separated weighting schemes to time")
    parser.add_argument("--repeats", type=int, default=2,
                        help="repetitions per backend; best time wins")
    parser.add_argument("--workers", type=int, default=None,
                        help="max worker count of the parallel-scaling "
                             "section (default: the machine's cpu count)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_metablocking.json",
                        help="JSON report path (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if any scheme speeds up less")
    parser.add_argument("--min-phase-speedup", type=float, default=None,
                        help="exit non-zero if the interned corpus speeds "
                             "up tokenize+schema+blocking less than this")
    parser.add_argument("--min-parallel-speedup", type=float, default=None,
                        help="exit non-zero if the best parallel-backend "
                             "speedup over serial vectorized is below this")
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")

    report = run(args)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    if not report["all_equivalent"]:
        print("error: backends disagree on the retained edge set",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None and report["speedup_min"] < args.min_speedup:
        print(f"error: speedup {report['speedup_min']}x below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        return 1
    phase_speedup = report["phase_breakdown"]["speedup_tokenize_schema_blocking"]
    if (
        args.min_phase_speedup is not None
        and phase_speedup < args.min_phase_speedup
    ):
        print(f"error: phase speedup {phase_speedup}x below the "
              f"{args.min_phase_speedup}x floor", file=sys.stderr)
        return 1
    parallel_speedup = report["parallel_scaling"]["best_speedup"]
    if (
        args.min_parallel_speedup is not None
        and parallel_speedup < args.min_parallel_speedup
    ):
        print(f"error: parallel speedup {parallel_speedup}x below the "
              f"{args.min_parallel_speedup}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
