"""Shared machinery for the table/figure benches.

The per-experiment benches (one file per paper table/figure) compose these
helpers: cached dataset loading, the T/L block-collection workflow of
Section 4.1 (expressed as stage pipelines), traditional meta-blocking
averaged over the five weighting schemes, and result formatting/writing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.blocking.base import BlockCollection
from repro.core import Blast, BlastConfig, prepare_blocks
from repro.data.dataset import ERDataset
from repro.datasets import load_clean_clean, load_dirty
from repro.graph import BlockingGraph, MetaBlocker, WeightingScheme, compute_weights
from repro.graph.metablocking import blocks_from_edges
from repro.graph.pruning import PruningScheme
from repro.metrics import BlockingQuality, evaluate_blocks
from repro.schema.partition import AttributePartitioning
from repro.utils.timer import Timer

RESULTS_DIR = Path(__file__).parent / "results"
SEED = 42


def write_result(name: str, text: str) -> None:
    """Persist a bench's table under results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}")


@lru_cache(maxsize=None)
def clean_dataset(name: str, scale: float = 1.0) -> ERDataset:
    return load_clean_clean(name, scale=scale, seed=SEED)


@lru_cache(maxsize=None)
def dirty_dataset(name: str, scale: float = 1.0) -> ERDataset:
    return load_dirty(name, scale=scale, seed=SEED)


@lru_cache(maxsize=None)
def partitioning_of(name: str, scale: float = 1.0, dirty: bool = False
                    ) -> AttributePartitioning:
    """The LMI partitioning (with entropies) of a cached dataset."""
    dataset = dirty_dataset(name, scale) if dirty else clean_dataset(name, scale)
    return Blast().extract_loose_schema(dataset)


@lru_cache(maxsize=None)
def blocks_T(name: str, scale: float = 1.0, dirty: bool = False) -> BlockCollection:
    """Token Blocking + purging + filtering (the "T" rows).

    ``prepare_blocks`` is the T/L stage composition (token or schema-aware
    blocking -> purging -> filtering) run over a pre-seeded context.
    """
    dataset = dirty_dataset(name, scale) if dirty else clean_dataset(name, scale)
    return prepare_blocks(dataset)


@lru_cache(maxsize=None)
def blocks_L(name: str, scale: float = 1.0, dirty: bool = False) -> BlockCollection:
    """LMI-disambiguated Token Blocking + purging + filtering ("L" rows)."""
    dataset = dirty_dataset(name, scale) if dirty else clean_dataset(name, scale)
    return prepare_blocks(dataset, partitioning_of(name, scale, dirty))


@dataclass(frozen=True)
class BenchRow:
    """One row of a Table 4/5/7-style comparison."""

    label: str
    quality: BlockingQuality
    overhead: float

    def formatted(self) -> str:
        q = self.quality
        return (
            f"{self.label:>16} PC={q.pair_completeness:7.2%} "
            f"PQ={q.pair_quality:9.4%} F1={q.f1:6.3f} "
            f"to={self.overhead:6.2f}s ||B||={q.comparisons:10.3g}"
        )


def traditional_mb_row(
    label: str,
    collection: BlockCollection,
    dataset: ERDataset,
    pruning_factory,
    extra_overhead: float = 0.0,
) -> BenchRow:
    """Traditional meta-blocking averaged over the 5 weighting schemes [20].

    The blocking graph is built once; each scheme weights and prunes it;
    PC/PQ/F1/||B|| are averaged across schemes, as in the paper's tables.
    """
    with Timer() as timer:
        graph = BlockingGraph(collection)
        qualities: list[BlockingQuality] = []
        for scheme in WeightingScheme.traditional():
            weights = compute_weights(graph, scheme)
            retained = pruning_factory().prune(graph, weights)
            out = blocks_from_edges(retained, collection.is_clean_clean)
            qualities.append(evaluate_blocks(out, dataset))
    n = len(qualities)
    mean = BlockingQuality(
        pair_completeness=sum(q.pair_completeness for q in qualities) / n,
        pair_quality=sum(q.pair_quality for q in qualities) / n,
        detected_duplicates=round(sum(q.detected_duplicates for q in qualities) / n),
        total_duplicates=qualities[0].total_duplicates,
        comparisons=round(sum(q.comparisons for q in qualities) / n),
        num_blocks=round(sum(q.num_blocks for q in qualities) / n),
    )
    return BenchRow(label, mean, timer.elapsed / n + extra_overhead)


def chi_h_mb_row(
    label: str,
    collection: BlockCollection,
    dataset: ERDataset,
    pruning: PruningScheme,
    partitioning: AttributePartitioning,
    extra_overhead: float = 0.0,
) -> BenchRow:
    """Meta-blocking with BLAST's chi-squared x entropy weighting and an
    arbitrary pruning scheme (the "Blast L chi2h" CNP rows)."""
    from repro.blocking.schema_aware import make_key_entropy

    with Timer() as timer:
        meta = MetaBlocker(
            weighting=WeightingScheme.CHI_H,
            pruning=pruning,
            key_entropy=make_key_entropy(partitioning),
        )
        out = meta.run(collection)
    return BenchRow(label, evaluate_blocks(out, dataset), timer.elapsed + extra_overhead)


def blast_row(
    label: str, dataset: ERDataset, config: BlastConfig | None = None
) -> BenchRow:
    """The full BLAST pipeline as one row."""
    result = Blast(config).run(dataset)
    return BenchRow(label, evaluate_blocks(result.blocks, dataset),
                    result.overhead_seconds)


def supervised_row(
    label: str, collection: BlockCollection, dataset: ERDataset
) -> BenchRow:
    """The supervised meta-blocking comparator."""
    from repro.supervised import SupervisedMetaBlocking

    with Timer() as timer:
        out = SupervisedMetaBlocking(seed=SEED).run(collection, dataset)
    return BenchRow(label, evaluate_blocks(out, dataset), timer.elapsed)


def lmi_overhead(name: str, scale: float = 1.0, dirty: bool = False) -> float:
    """Wall-clock of the loose-schema-extraction phase (for "L" rows' to)."""
    dataset = dirty_dataset(name, scale) if dirty else clean_dataset(name, scale)
    with Timer() as timer:
        Blast().extract_loose_schema(dataset)
    return timer.elapsed
