"""Ablations for BLAST's design constants (beyond the paper's figures).

The paper fixes several constants with one-line justifications; these
sweeps make the claimed trade-offs measurable:

* Section 3.3.2: "a higher value for c can achieve higher PC, but at the
  expense of PQ" — the c sweep.
* Section 3.3.2: d = 2 makes the edge threshold the mean of the endpoint
  thresholds — the d sweep shows its sensitivity.
* Footnote 9: "20% [filtering] is a tradeoff that almost does not affect
  PC" — the filtering-ratio sweep.
* Algorithm 1: alpha = 0.9 as the "nearly similar" candidate factor — the
  alpha sweep shows robustness of the induced partitioning.
"""

from harness import clean_dataset, write_result

from repro.core import Blast, BlastConfig
from repro.metrics import evaluate_blocks

DATASET = "ar2"  # the hardest fully mappable pair: trade-offs are visible


def _quality(config: BlastConfig):
    dataset = clean_dataset(DATASET)
    result = Blast(config).run(dataset)
    return evaluate_blocks(result.blocks, dataset)


def test_ablation_pruning_c(benchmark):
    def sweep():
        rows = [f"Ablation - pruning constant c on {DATASET} "
                "(theta_i = max_i / c)"]
        for c in (1.0, 1.5, 2.0, 3.0, 5.0):
            q = _quality(BlastConfig(pruning_c=c))
            rows.append(f"  c={c:>4}: PC={q.pair_completeness:7.2%} "
                        f"PQ={q.pair_quality:9.4%} F1={q.f1:6.3f}")
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    write_result("ablation_pruning_c", "\n".join(rows))
    # the paper's claim: PC non-decreasing in c, PQ non-increasing
    pcs = [float(r.split("PC=")[1].split("%")[0]) for r in rows[1:]]
    assert pcs == sorted(pcs)


def test_ablation_pruning_d(benchmark):
    def sweep():
        rows = [f"Ablation - combiner constant d on {DATASET} "
                "(theta_ij = (theta_i + theta_j) / d)"]
        for d in (1.0, 1.5, 2.0, 3.0, 4.0):
            q = _quality(BlastConfig(pruning_d=d))
            rows.append(f"  d={d:>4}: PC={q.pair_completeness:7.2%} "
                        f"PQ={q.pair_quality:9.4%} F1={q.f1:6.3f}")
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    write_result("ablation_pruning_d", "\n".join(rows))


def test_ablation_filtering_ratio(benchmark):
    def sweep():
        rows = [f"Ablation - block filtering ratio on {DATASET} "
                "(keep each profile in ratio * |B_i| smallest blocks)"]
        for ratio in (0.5, 0.6, 0.8, 0.9, 1.0):
            q = _quality(BlastConfig(filtering_ratio=ratio))
            rows.append(f"  ratio={ratio:>4}: PC={q.pair_completeness:7.2%} "
                        f"PQ={q.pair_quality:9.4%} F1={q.f1:6.3f}")
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    write_result("ablation_filtering_ratio", "\n".join(rows))
    # footnote 9: the default 0.8 must cost almost no PC vs no filtering
    pc_080 = float(rows[3].split("PC=")[1].split("%")[0])
    pc_100 = float(rows[5].split("PC=")[1].split("%")[0])
    assert pc_100 - pc_080 < 1.0


def test_ablation_lmi_alpha(benchmark):
    def sweep():
        rows = [f"Ablation - LMI candidate factor alpha on {DATASET}"]
        for alpha in (0.5, 0.7, 0.9, 1.0):
            q = _quality(BlastConfig(alpha=alpha))
            rows.append(f"  alpha={alpha:>4}: PC={q.pair_completeness:7.2%} "
                        f"PQ={q.pair_quality:9.4%} F1={q.f1:6.3f}")
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    write_result("ablation_lmi_alpha", "\n".join(rows))
