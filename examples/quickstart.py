#!/usr/bin/env python3
"""Quickstart: run BLAST end to end on a bibliographic benchmark.

Generates the ar1 dataset pair (DBLP/ACM-like), runs the three-phase BLAST
pipeline, and compares the final block collection against the Token
Blocking baseline — the core claim of the paper in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import Blast, evaluate_blocks, load_clean_clean, prepare_blocks


def main() -> None:
    dataset = load_clean_clean("ar1")
    print(f"dataset: {dataset}")
    print(f"brute force would need {dataset.brute_force_comparisons():,} comparisons")

    # Baseline: schema-agnostic Token Blocking + purging + filtering.
    baseline = prepare_blocks(dataset)
    baseline_quality = evaluate_blocks(baseline, dataset)
    print(f"\ntoken blocking baseline: {baseline_quality}")

    # BLAST: loose schema extraction -> disambiguated blocking ->
    # chi-squared x entropy meta-blocking.
    result = Blast().run(dataset)
    quality = evaluate_blocks(result.blocks, dataset)
    print(f"BLAST:                   {quality}")
    print(f"overhead: {result.overhead_seconds:.2f}s "
          f"({ {k: round(v, 2) for k, v in result.phase_seconds.items()} })")
    print("\nper-stage instrumentation:")
    print(result.report())

    print("\ninduced attribute clusters:")
    part = result.partitioning
    for cluster_id in part.cluster_ids:
        members = sorted(part.members(cluster_id))
        label = "glue" if cluster_id == 0 else f"C{cluster_id}"
        print(f"  {label:>5}  H={part.entropy_of(cluster_id):5.2f}  {members}")

    gain = quality.pair_quality / max(baseline_quality.pair_quality, 1e-12)
    print(f"\nprecision (PQ) improved {gain:,.0f}x at "
          f"PC {quality.pair_completeness:.1%} "
          f"(baseline {baseline_quality.pair_completeness:.1%})")


if __name__ == "__main__":
    main()
