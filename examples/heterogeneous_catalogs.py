#!/usr/bin/env python3
"""Matching two e-commerce catalogs with noisy, differently named schemas.

The prd scenario from the paper's evaluation (Abt vs Buy): two product
catalogs describing overlapping inventories with different attribute names
("name"/"product", "manufacturer"/"maker"), heavy value noise, and brand
tokens leaking between product names and free-text descriptions.

The example contrasts four strategies on identical data:

1. brute force (count only),
2. Token Blocking + purging/filtering,
3. traditional meta-blocking (reciprocal WNP over Jaccard weights),
4. BLAST.

Run:  python examples/heterogeneous_catalogs.py
"""

from repro import (
    Blast,
    MetaBlocker,
    WeightingScheme,
    evaluate_blocks,
    load_clean_clean,
    prepare_blocks,
)
from repro.graph.pruning import WeightNodePruning


def main() -> None:
    dataset = load_clean_clean("prd")
    print(f"dataset: {dataset}")
    sample = dataset.collection1[0]
    print("sample Abt profile:", dict(sample.iter_pairs()))
    sample2 = dataset.collection2[0]
    print("sample Buy profile:", dict(sample2.iter_pairs()))

    rows: list[tuple[str, object]] = []
    rows.append(("brute force", f"{dataset.brute_force_comparisons():,} comparisons"))

    baseline = prepare_blocks(dataset)
    rows.append(("token blocking", evaluate_blocks(baseline, dataset)))

    traditional = MetaBlocker(
        weighting=WeightingScheme.JS,
        pruning=WeightNodePruning(reciprocal=True),
    ).run(baseline)
    rows.append(("wnp2 (JS)", evaluate_blocks(traditional, dataset)))

    blast = Blast().run(dataset)
    rows.append(("BLAST", evaluate_blocks(blast.blocks, dataset)))

    print()
    for label, value in rows:
        print(f"{label:>16}: {value}")

    print("\ninduced attribute alignment (despite different names):")
    part = blast.partitioning
    for cid in part.cluster_ids:
        if cid == 0:
            continue
        print(f"  C{cid}: {sorted(a for _, a in part.members(cid))}")


if __name__ == "__main__":
    main()
