#!/usr/bin/env python3
"""The paper's worked example (Figures 1-3), executed step by step.

Builds the four "Abram" profiles of Figure 1a, shows the Token Blocking
blocks (1b), the blocking-graph weights (1c), the effect of blocking-key
disambiguation (Figure 2), and how entropy weighting plus BLAST pruning
removes the superfluous comparisons while keeping both matches (Figure 3).

Run:  python examples/paper_walkthrough.py
"""

from repro.blocking import LooselySchemaAwareBlocking, TokenBlocking
from repro.blocking.schema_aware import make_key_entropy
from repro.data import EntityCollection, EntityProfile, ERDataset, GroundTruth
from repro.graph import BlockingGraph, MetaBlocker, WeightingScheme, compute_weights
from repro.schema.entropy import extract_loose_schema_entropies
from repro.schema.partition import AttributePartitioning

NAMES = {0: "p1", 1: "p2", 2: "p3", 3: "p4"}


def figure1_dataset() -> ERDataset:
    """Figure 1a: four profiles from four different data sources."""
    p1 = EntityProfile.from_dict("p1", {
        "Name": "John Abram Jr", "profession": "car seller",
        "year": "1985", "Addr.": "Main street"})
    p2 = EntityProfile.from_dict("p2", {
        "FirstName": "Ellen", "SecondName": "Smith", "year": "85",
        "occupation": "retail", "mail": "Abram st. 30 NY"})
    p3 = EntityProfile.from_dict("p3", {
        "name1": "Jon Jr", "name2": "Abram", "birth year": "85",
        "job": "car retail", "Loc": "Main st."})
    p4 = EntityProfile.from_dict("p4", {
        "full name": "Ellen Smith", "b. date": "May 10 1985",
        "work info": "retailer", "loc": "Abram street NY"})
    return ERDataset(
        EntityCollection([p1, p2, p3, p4], "web"),
        None,
        GroundTruth([("p1", "p3"), ("p2", "p4")], clean_clean=False),
        name="figure1",
    )


def show_weights(title: str, weights: dict) -> None:
    print(f"\n{title}")
    for (i, j), w in sorted(weights.items()):
        print(f"  {NAMES[i]}-{NAMES[j]}: {w:.2f}")


def main() -> None:
    dataset = figure1_dataset()

    # --- Figure 1b: Token Blocking ---------------------------------------
    blocks = TokenBlocking().build(dataset)
    print("Figure 1b - Token Blocking blocks:")
    for block in blocks:
        members = ", ".join(NAMES[i] for i in sorted(block.profiles))
        print(f"  {block.key:>7}: {{{members}}}")

    # --- Figure 1c: the blocking graph (co-occurrence weights) -----------
    graph = BlockingGraph(blocks)
    show_weights("Figure 1c - blocking graph (CBS weights):",
                 compute_weights(graph, WeightingScheme.CBS))

    # --- Figure 2: blocking-key disambiguation ---------------------------
    # The idealized loose schema info of the paper: person-name attributes
    # in one cluster, everything else "not similar enough" in the glue.
    partitioning = AttributePartitioning(
        clusters=[{(0, "Name"), (0, "FirstName"), (0, "SecondName"),
                   (0, "name1"), (0, "name2"), (0, "full name")}],
        glue={(0, "profession"), (0, "year"), (0, "occupation"),
              (0, "birth year"), (0, "job"), (0, "work info"),
              (0, "b. date"), (0, "Addr."), (0, "mail"), (0, "Loc"),
              (0, "loc")},
    )
    aware_blocks = LooselySchemaAwareBlocking(partitioning).build(dataset)
    print("\nFigure 2a - disambiguated 'abram' blocks:")
    for block in aware_blocks:
        if block.key.startswith("abram"):
            members = ", ".join(NAMES[i] for i in sorted(block.profiles))
            print(f"  {block.key}: {{{members}}}")
    aware_graph = BlockingGraph(aware_blocks)
    show_weights("Figure 2b - graph after disambiguation (CBS):",
                 compute_weights(aware_graph, WeightingScheme.CBS))

    # --- Figure 3: entropy-weighted meta-blocking ------------------------
    partitioning = extract_loose_schema_entropies(
        partitioning, dataset.collection1, None
    )
    print("\nFigure 3a - aggregate entropies:")
    for cid in partitioning.cluster_ids:
        label = "glue (other attr.)" if cid == 0 else "cluster 1 (names)"
        print(f"  {label}: {partitioning.entropy_of(cid):.2f}")

    meta = MetaBlocker(key_entropy=make_key_entropy(partitioning))
    final, _, weights, retained = meta.run_detailed(aware_blocks)
    show_weights("Figure 3b - chi-squared x entropy weights:", weights)
    print("\nFigure 3c - retained comparisons after BLAST pruning:")
    for i, j in sorted(retained):
        truth = "match" if (i, j) in dataset.truth_pairs else "SUPERFLUOUS"
        print(f"  {NAMES[i]}-{NAMES[j]}  ({truth})")
    print(f"\n{len(retained)} comparisons instead of "
          f"{dataset.brute_force_comparisons()} brute-force ones.")


if __name__ == "__main__":
    main()
