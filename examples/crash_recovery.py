#!/usr/bin/env python3
"""Crash-safe streaming: journaled sessions that survive being killed.

Demonstrates the reliability layer end to end on a small dirty task:

1. journaling — a session opened with ``journal=`` appends every
   ``upsert``/``delete`` to a write-ahead journal *before* applying it;
2. crash — a child process is killed by an injected fault
   (``REPRO_FAULTS="journal.apply=kill@N"``) inside the commit window:
   the journal line is durable, the in-memory apply never happened;
3. recovery — ``StreamingSession.recover(snapshot, journal)`` replays
   the journal tail on top of the last snapshot and reproduces the
   never-crashed session's neighborhoods bit for bit;
4. corruption — a bit-flipped snapshot is rejected with
   ``SnapshotCorruptionError`` instead of serving wrong answers.

Run:  python examples/crash_recovery.py
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import BlastConfig, StreamingSession
from repro.data import EntityProfile
from repro.streaming import SnapshotCorruptionError

PEOPLE = [
    ("a", "john abram"),
    ("b", "john abram jr"),
    ("c", "ellen smith"),
    ("d", "ellen smith"),
    ("e", "john smith"),
]


def profile(pid: str, name: str) -> EntityProfile:
    return EntityProfile.from_dict(pid, {"name": name})


def neighborhoods(session: StreamingSession) -> dict:
    index = session.index
    return {
        index.profile_of(node).profile_id: [
            (c.profile_id, round(c.weight, 6))
            for c in session.neighborhood(index.profile_of(node).profile_id)
        ]
        for node in index.live_nodes()
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "session.json.gz"
        journal = Path(tmp) / "wal.jsonl"

        # 1. A journaled session: two arrivals, then a snapshot.
        with StreamingSession(BlastConfig(), journal=journal) as session:
            session.upsert(profile(*PEOPLE[0]))
            session.upsert(profile(*PEOPLE[1]))
            session.snapshot(snapshot)
        print(f"seeded: snapshot at journal seq 2, WAL at {journal.name}")

        # 2. A child continues the stream and is killed *between* the
        #    journal append and the in-memory apply of its third upsert
        #    (the fifth operation overall) — the worst possible moment.
        code = (
            "from repro import BlastConfig, StreamingSession\n"
            "from repro.data import EntityProfile\n"
            f"s = StreamingSession.recover({str(snapshot)!r}, {str(journal)!r})\n"
            "for pid, name in [('c', 'ellen smith'), ('d', 'ellen smith'),\n"
            "                  ('e', 'john smith')]:\n"
            "    s.upsert(EntityProfile.from_dict(pid, {'name': name}))\n"
            "raise SystemExit('unreachable: the injected kill fires first')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=dict(os.environ, REPRO_FAULTS="journal.apply=kill@3"),
            capture_output=True,
        )
        print(f"child killed in the commit window (exit {result.returncode})")

        # 3. Recover and compare against the session that never crashed.
        oracle = StreamingSession(BlastConfig())
        for pid, name in PEOPLE:
            oracle.upsert(profile(pid, name))

        recovered = StreamingSession.recover(snapshot, journal)
        identical = neighborhoods(recovered) == neighborhoods(oracle)
        print(
            f"recovered {recovered.index.num_profiles} profiles from "
            f"snapshot + journal tail; neighborhoods identical to the "
            f"never-crashed session: {identical}"
        )
        recovered.close()
        if not identical:
            raise SystemExit("recovery lost the committed operation")

        # 4. Corruption is loud: a flipped bit fails the CRC on restore.
        raw = bytearray(snapshot.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        snapshot.write_bytes(bytes(raw))
        try:
            StreamingSession.restore(snapshot)
        except SnapshotCorruptionError as exc:
            print(f"corrupt snapshot rejected: {exc}")


if __name__ == "__main__":
    main()
