#!/usr/bin/env python3
"""The Section 4.2.2 cost argument: blocking time buys matching time.

Executes the *downstream* entity matching (Jaccard over profile strings,
exactly as in the paper's footnote 11) on three candidate sets of the same
ar2-like dataset — raw Token Blocking, filtered blocking, and BLAST — and
reports wall-clock and quality for each.  The point: meta-blocking overhead
is repaid many times over by the comparisons it removes.

Run:  python examples/end_to_end_er.py
"""

import time

from repro import Blast, evaluate_blocks, load_clean_clean
from repro.blocking import TokenBlocking, block_filtering, block_purging
from repro.matching import JaccardMatcher


def main() -> None:
    dataset = load_clean_clean("ar2")
    print(f"dataset: {dataset} "
          f"(brute force: {dataset.brute_force_comparisons():,} comparisons)\n")

    candidates = {}
    raw = TokenBlocking().build(dataset)
    candidates["token blocking (raw)"] = raw
    purged = block_purging(raw, dataset.num_profiles)
    candidates["purged + filtered"] = block_filtering(purged)

    t0 = time.perf_counter()
    blast = Blast().run(dataset)
    blast_overhead = time.perf_counter() - t0
    candidates["BLAST"] = blast.blocks

    matcher = JaccardMatcher(threshold=0.3)
    print(f"{'candidate set':>22} {'pairs':>10} {'match-time':>10} "
          f"{'recall':>8} {'precision':>9}")
    for label, blocks in candidates.items():
        result = matcher.execute(blocks, dataset)
        quality = evaluate_blocks(blocks, dataset)
        print(f"{label:>22} {result.comparisons_executed:>10,} "
              f"{result.seconds:>9.2f}s {result.recall:>8.1%} "
              f"{result.precision:>9.1%}   (blocking PC={quality.pair_completeness:.1%})")

    print(f"\nBLAST overhead was {blast_overhead:.2f}s — compare the "
          "match-time saved against the raw candidate set.")


if __name__ == "__main__":
    main()
