#!/usr/bin/env python3
"""Composing custom pipelines from stages and registered components.

Shows the three faces of the stage API on one dataset:

1. the default BLAST pipeline, spelled out stage by stage;
2. registry-driven assembly (``build_pipeline``) — the composition the CLI
   uses for ``--blocker suffix-array --weighting cbs``;
3. a custom component registered at runtime and addressed by name.

Run:  python examples/custom_pipeline.py
"""

from repro import (
    BlastConfig,
    BlockFilteringStage,
    BlockPurgingStage,
    MetaBlockingStage,
    Pipeline,
    SchemaAwareBlockingStage,
    SchemaExtraction,
    build_pipeline,
    evaluate_blocks,
    load_clean_clean,
    register_pruning,
)
from repro.graph.pruning import BlastPruning


def main() -> None:
    dataset = load_clean_clean("ar1", scale=0.5)
    config = BlastConfig()

    # 1. The paper's five stages, written out.  Identical to Blast().run().
    explicit = Pipeline([
        SchemaExtraction(config),
        SchemaAwareBlockingStage(),
        BlockPurgingStage(),
        BlockFilteringStage(),
        MetaBlockingStage(),
    ])
    result = explicit.run(dataset)
    print(f"explicit pipeline: {evaluate_blocks(result.blocks, dataset)}")
    print(result.report())

    # 2. Registry-driven assembly: swap the blocker and weighting by name.
    for blocker, weighting in (("token", "cbs"), ("qgrams", "js")):
        pipeline = build_pipeline(config, blocker=blocker, weighting=weighting)
        quality = evaluate_blocks(pipeline.run(dataset).blocks, dataset)
        print(f"\n{blocker}+{weighting}: {quality}")

    # 3. Extend the system: a custom pruning scheme, addressable by name
    #    (it also appears in `python -m repro run --help` automatically).
    @register_pruning("blast-strict")
    def _strict(config: BlastConfig) -> BlastPruning:
        return BlastPruning(c=1.2, d=config.pruning_d)

    strict = build_pipeline(config, pruning="blast-strict").run(dataset)
    print(f"\nblast-strict pruning: {evaluate_blocks(strict.blocks, dataset)}")


if __name__ == "__main__":
    main()
