#!/usr/bin/env python3
"""Dirty ER: deduplicating a single noisy person registry (Section 4.5).

The census scenario: one collection, duplicates hiding among singletons,
five attributes, typos and abbreviations everywhere — and the surname/street
ambiguity (people named like the streets they live on) that schema-agnostic
blocking cannot tell apart.

BLAST's dirty-ER adaptation runs LMI within the single source, then the
unchanged meta-blocking.  The example finishes with actual entity
resolution: executing the retained comparisons with a Jaccard matcher and
grouping matches into entities.

Run:  python examples/dirty_dedup.py
"""

from repro import Blast, evaluate_blocks, load_dirty, prepare_blocks
from repro.matching import JaccardMatcher, resolve_entities


def main() -> None:
    dataset = load_dirty("census")
    print(f"dataset: {dataset}")
    print("sample record:", dict(dataset.collection1[0].iter_pairs()))

    baseline = prepare_blocks(dataset)
    print(f"\ntoken blocking: {evaluate_blocks(baseline, dataset)}")

    result = Blast().run(dataset)
    print(f"BLAST:          {evaluate_blocks(result.blocks, dataset)}")

    # Downstream ER on the BLAST candidates.
    matcher = JaccardMatcher(threshold=0.45)
    match_result = matcher.execute(result.blocks, dataset)
    print(f"\nmatcher executed {match_result.comparisons_executed} comparisons "
          f"in {match_result.seconds * 1000:.0f}ms")
    print(f"matching precision={match_result.precision:.2%} "
          f"recall={match_result.recall:.2%} f1={match_result.f1:.3f}")

    entities = resolve_entities(
        match_result.matches, range(dataset.num_profiles)
    )
    duplicates = [e for e in entities if len(e) > 1]
    print(f"\nresolved {len(entities)} entities "
          f"({len(duplicates)} with duplicates) "
          f"from {dataset.num_profiles} records")
    for group in duplicates[:3]:
        print("  duplicate group:")
        for index in sorted(group):
            print(f"    {dict(dataset.profile(index).iter_pairs())}")


if __name__ == "__main__":
    main()
