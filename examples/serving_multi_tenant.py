#!/usr/bin/env python3
"""Multi-tenant serving: many isolated indexes behind one TCP server.

Walks the serving layer end to end on two tenants:

1. serve — ``ReproServer`` fronts a ``TenantRegistry``: each tenant id
   maps to its own ``StreamingSession`` (own WAL, own snapshot) under
   the data directory, opened lazily on first touch;
2. mixed load — two catalogs upsert over one pipelined connection
   (writes batch through per-tenant actor queues) and query at arrival
   time; ``stats`` shows the per-tenant roll-up;
3. crash — a *fresh server process* on the same data directory is
   killed by an injected fault (``REPRO_FAULTS="journal.apply=kill@N"``)
   mid-commit, the worst possible moment;
4. recover — a registry re-attached to the data directory rebuilds
   every tenant from snapshot + journal tail, bit-identical to a
   session that never crashed (acked writes always survive).

Run:  python examples/serving_multi_tenant.py
"""

import asyncio
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import BlastConfig
from repro.data import EntityProfile
from repro.serving import ReproServer, ServingClient, TenantRegistry
from repro.streaming import StreamingSession

CATALOGS = {
    "acme": [
        ("a1", "john abram"),
        ("a2", "john abram"),
        ("a3", "ellen smith"),
    ],
    "globex": [
        ("g1", "ellen smith"),
        ("g2", "ellen smith"),
        ("g3", "john abram"),
    ],
}

#: Survivable small-data config: no block purging, plain CBS weights.
CONFIG_ARGS = dict(purging_ratio=1.0, weighting="cbs")

SERVER_SCRIPT = """\
import asyncio
from repro.core import BlastConfig
from repro.serving import ReproServer, TenantRegistry

async def main():
    registry = TenantRegistry(
        {data_dir!r}, BlastConfig(purging_ratio=1.0, weighting="cbs")
    )
    server = ReproServer(registry, log_interval=None)
    await server.start()
    print(f"PORT={{server.port}}", flush=True)
    await server.serve_forever(install_signal_handlers=False)

asyncio.run(main())
"""


def neighborhoods(session: StreamingSession) -> dict:
    index = session.index
    return {
        index.profile_of(node).profile_id: [
            (c.profile_id, round(c.weight, 6))
            for c in session.neighborhood(index.profile_of(node).profile_id)
        ]
        for node in index.live_nodes()
    }


async def serve_and_query(data_dir: Path) -> None:
    registry = TenantRegistry(data_dir, BlastConfig(**CONFIG_ARGS))
    server = ReproServer(registry, log_interval=None)
    await server.start()
    print(f"serving two tenants on 127.0.0.1:{server.port}")

    async with await ServingClient.connect("127.0.0.1", server.port) as client:
        # One pipelined burst: the per-tenant actors batch these writes.
        records = [
            {"v": "upsert", "tenant": tenant, "id": pid,
             "attributes": [["name", name]]}
            for tenant, people in CATALOGS.items()
            for pid, name in people
        ]
        responses = await client.pipeline(records)
        acked = sum(1 for r in responses if r["ok"])
        print(f"pipelined {acked}/{len(records)} upserts across 2 tenants")

        # Same profile id spaces never mix: each tenant is its own index.
        for tenant in CATALOGS:
            found = await client.query(tenant, f"{tenant[0]}1", k=5)
            ids = [candidate["id"] for candidate in found]
            print(f"  {tenant}: candidates of {tenant[0]}1 -> {ids}")

        stats = await client.stats()
        for tenant, snap in sorted(stats["tenants"].items()):
            print(
                f"  {tenant}: {snap['upserts']} upserts, "
                f"{snap['queries']} queries, "
                f"mean batch {snap['mean_batch_size']:.1f}"
            )
        await client.shutdown()

    # Graceful drain: queues flushed, every dirty tenant snapshotted.
    await server.serve_forever(install_signal_handlers=False)
    print("drained: snapshot per tenant on disk\n")


def crash_a_fresh_server(data_dir: Path) -> int:
    """Kill a server on the same data dir mid-commit; count acked ops."""
    proc = subprocess.Popen(
        [sys.executable, "-c", SERVER_SCRIPT.format(data_dir=str(data_dir))],
        env=dict(os.environ, REPRO_FAULTS="journal.apply=kill@2"),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    port = int(proc.stdout.readline().strip().split("=", 1)[1])

    async def drive() -> int:
        acked = 0
        client = await ServingClient.connect("127.0.0.1", port)
        try:
            await client.upsert("acme", "a4", [["name", "abram street"]])
            acked += 1
            await client.upsert("globex", "g4", [["name", "smith street"]])
            acked += 1
        except (ConnectionError, OSError):
            pass
        finally:
            await client.close()
        return acked

    acked = asyncio.run(drive())
    exit_code = proc.wait(timeout=30)
    print(
        f"fresh server killed in the commit window "
        f"(exit {exit_code}, {acked} of 2 new upserts acked)"
    )
    return acked


async def recover(data_dir: Path) -> dict:
    registry = TenantRegistry(data_dir, BlastConfig(**CONFIG_ARGS))
    states = {}
    for tenant_id in registry.known_tenants():
        tenant = await registry.get(tenant_id)
        states[tenant_id] = neighborhoods(tenant.session)
    await registry.close_all()
    return states


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = Path(tmp) / "tenants"

        asyncio.run(serve_and_query(data_dir))
        crash_a_fresh_server(data_dir)

        # The journaled-but-unapplied op is recovered too: the kill fired
        # *after* the WAL append, and the journal is the truth.
        survivors = {
            "acme": CATALOGS["acme"] + [("a4", "abram street")],
            "globex": CATALOGS["globex"] + [("g4", "smith street")],
        }
        oracles = {}
        for tenant_id, people in survivors.items():
            session = StreamingSession(BlastConfig(**CONFIG_ARGS))
            for pid, name in people:
                session.upsert(EntityProfile.from_dict(pid, {"name": name}))
            oracles[tenant_id] = neighborhoods(session)

        recovered = asyncio.run(recover(data_dir))
        identical = recovered == oracles
        print(
            f"recovered {len(recovered)} tenants from snapshot + journal "
            f"tail; neighborhoods identical to never-crashed sessions: "
            f"{identical}"
        )
        if not identical:
            raise SystemExit("recovery lost an acknowledged operation")


if __name__ == "__main__":
    main()
