#!/usr/bin/env python3
"""Incremental ER: serve candidates as profiles arrive.

Walks the streaming subsystem end to end on a generated clean-clean task:

1. arrival-time replay — every ``upsert`` is followed by a query against
   the live index (the ``fast`` serving view), emitting matches the
   moment both sides have arrived;
2. mutation — a profile is deleted and queries reflect it immediately;
3. persistence — the warmed session survives a snapshot/restore round
   trip;
4. validation — with the ``exact`` view, querying every profile after a
   full replay reproduces the batch pipeline's retained pairs, edge for
   edge.

Run:  python examples/streaming_session.py
"""

import tempfile
from pathlib import Path

from repro import Blast, BlastConfig, StreamingSession, load_clean_clean


def main() -> None:
    dataset = load_clean_clean("ar1", scale=0.3)
    config = BlastConfig()

    # 1. Arrival-time serving: upsert + query per arriving profile.
    serving = StreamingSession(config, clean_clean=True, consistency="fast")
    arrivals = matches = 0
    first_match = None
    for gidx, profile in dataset.iter_profiles():
        source = dataset.source_of(gidx)
        serving.upsert(profile, source=source)
        arrivals += 1
        candidates = serving.candidates(profile.profile_id, k=5, source=source)
        matches += len(candidates)
        if candidates and first_match is None:
            first_match = ((profile.profile_id, source), candidates[0],
                           arrivals)
    (target, target_source), partner, seen = first_match
    print(f"arrival-time replay: {arrivals} arrivals, "
          f"{matches} candidate links emitted on the fly")
    print(f"first match: {target} ~ {partner.profile_id} "
          f"(after {seen} arrivals)")

    # 2. Mutation: deleting a profile retracts its candidacy immediately.
    before = [c.profile_id
              for c in serving.candidates(target, source=target_source)]
    serving.delete(partner.profile_id, source=partner.source)
    after = [c.profile_id
             for c in serving.candidates(target, source=target_source)]
    print(f"after deleting {partner.profile_id}: {target} candidates "
          f"{before} -> {after}")

    # 3. Persistence: the warmed index survives a restart.
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "session.json.gz"
        serving.snapshot(snapshot)
        restored = StreamingSession.restore(snapshot)
        print(f"snapshot round trip: {snapshot.stat().st_size / 1024:.0f} KiB, "
              f"{restored.index.num_profiles} profiles restored")

    # 4. Validation: exact-view queries == the batch pipeline, pair for pair.
    batch_pairs = Blast(config).run(dataset).blocks.distinct_pairs()
    session = StreamingSession.from_dataset(dataset, config)  # exact view
    stream_pairs = set()
    for gidx, profile in dataset.iter_profiles():
        source = dataset.source_of(gidx)
        for c in session.candidates(profile.profile_id, source=source):
            other = (dataset.collection1.index_of(c.profile_id)
                     if c.source == 0
                     else dataset.offset2
                     + dataset.collection2.index_of(c.profile_id))
            stream_pairs.add((min(gidx, other), max(gidx, other)))
    print(f"exact-view replay vs batch pipeline: "
          f"{len(stream_pairs)} streamed pairs, {len(batch_pairs)} batch "
          f"pairs, identical={stream_pairs == batch_pairs}")


if __name__ == "__main__":
    main()
